package chaos

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero plan invalid: %v", err)
	}
	for agent := 0; agent < 8; agent++ {
		if r := p.CrashRound(agent); r != -1 {
			t.Fatalf("zero plan crashes agent %d at round %d", agent, r)
		}
		for round := 0; round < 50; round++ {
			if p.Omit(round, agent, 0) || p.Corrupt(round, agent, 0) ||
				p.Duplicate(round, agent) || p.ExtraDelay(round, agent) != 0 {
				t.Fatalf("zero plan injected a fault at round %d agent %d", round, agent)
			}
		}
	}
	var nilPlan *Plan
	if nilPlan.Enabled() || nilPlan.Crashed(3, 1) || nilPlan.Omit(0, 0, 0) {
		t.Fatal("nil plan injected a fault")
	}
}

func TestDrawsAreDeterministicAndOrderFree(t *testing.T) {
	p := Plan{Seed: 42, CrashRate: 0.3, CrashWindow: 100, OmitRate: 0.2,
		CorruptRate: 0.1, DupRate: 0.15, DelayRate: 0.25, Delay: 2.5, Attempts: 3, RetryDelay: 0.5}
	q := p // identical plan, drawn in a different order below
	type key struct{ r, a, att int }
	forward := map[key][4]bool{}
	for r := 0; r < 30; r++ {
		for a := 0; a < 6; a++ {
			for att := 0; att < 3; att++ {
				forward[key{r, a, att}] = [4]bool{
					p.Omit(r, a, att), p.Corrupt(r, a, att), p.Duplicate(r, a), p.ExtraDelay(r, a) > 0,
				}
			}
		}
	}
	for r := 29; r >= 0; r-- {
		for a := 5; a >= 0; a-- {
			for att := 2; att >= 0; att-- {
				got := [4]bool{
					q.Omit(r, a, att), q.Corrupt(r, a, att), q.Duplicate(r, a), q.ExtraDelay(r, a) > 0,
				}
				if got != forward[key{r, a, att}] {
					t.Fatalf("draw (%d,%d,%d) depends on sampling order", r, a, att)
				}
			}
		}
	}
}

func TestCrashDesignationRespectsWindowAndRate(t *testing.T) {
	p := Plan{Seed: 7, CrashRate: 0.5, CrashWindow: 40}
	crashers := 0
	for agent := 0; agent < 1000; agent++ {
		r := p.CrashRound(agent)
		if r == -1 {
			continue
		}
		crashers++
		if r < 0 || r >= p.CrashWindow {
			t.Fatalf("agent %d crash round %d outside [0, %d)", agent, r, p.CrashWindow)
		}
		if p.Crashed(r-1, agent) {
			t.Fatalf("agent %d crashed before its round", agent)
		}
		if !p.Crashed(r, agent) || !p.Crashed(r+10, agent) {
			t.Fatalf("agent %d not dead from round %d on", agent, r)
		}
	}
	if frac := float64(crashers) / 1000; math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("crash fraction %v far from rate 0.5", frac)
	}
}

func TestRatesApproximatelyHold(t *testing.T) {
	p := Plan{Seed: 11, OmitRate: 0.25}
	hits := 0
	const draws = 20000
	for r := 0; r < 200; r++ {
		for a := 0; a < 100; a++ {
			if p.Omit(r, a, 0) {
				hits++
			}
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("omission fraction %v far from rate 0.25", frac)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{OmitRate: -0.1},
		{OmitRate: 1.5},
		{CrashRate: 0.2}, // no window
		{DelayRate: 0.3}, // no delay amount
		{Attempts: -1},
		{RetryDelay: -2},
		{CorruptRate: 2},
		{DupRate: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad plan %+v validated", i, p)
		}
	}
	good := Plan{Seed: 1, CrashRate: 0.1, CrashWindow: 10, OmitRate: 0.1,
		CorruptRate: 0.1, DupRate: 0.1, DelayRate: 0.1, Delay: 1, Attempts: 2, RetryDelay: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestCorruptFrameFlipsExactlyOneBitDeterministically(t *testing.T) {
	p := Plan{Seed: 5, CorruptRate: 1}
	orig := []byte("the quick brown fox jumps over the lazy dog")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	p.CorruptFrame(a, 3, 2)
	p.CorruptFrame(b, 3, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("corruption is not deterministic")
	}
	diffBits := 0
	for i := range orig {
		x := orig[i] ^ a[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	p.CorruptFrame(nil, 0, 0) // must not panic
}

func TestCountersAddAndTotal(t *testing.T) {
	var c Counters
	if !c.IsZero() {
		t.Fatal("zero counters not IsZero")
	}
	c.Add(Counters{Crashed: 1, Omitted: 2, Retried: 3, LostRounds: 1})
	c.Add(Counters{Corrupted: 4, Duplicated: 5, Delayed: 6})
	if c.IsZero() {
		t.Fatal("nonzero counters IsZero")
	}
	if got := c.Total(); got != 21 {
		t.Fatalf("Total = %d, want 21", got)
	}
	if c.LostRounds != 1 {
		t.Fatalf("LostRounds = %d, want 1", c.LostRounds)
	}
}

func TestTornWriterStopsPersistingAtLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &TornWriter{W: &buf, Limit: 10}
	for _, chunk := range []string{"hello ", "world ", "more"} {
		n, err := w.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("torn write reported (%d, %v), want silent success", n, err)
		}
	}
	if got := buf.String(); got != "hello worl" {
		t.Fatalf("persisted %q, want the 10-byte prefix", got)
	}
}

func TestTearFileTruncatesInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(path, 4); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123" {
		t.Fatalf("after tear: %q", data)
	}
	if err := TearFile(path, 99); err == nil {
		t.Fatal("tear past EOF accepted")
	}
	if err := TearFile(filepath.Join(t.TempDir(), "absent"), 0); err == nil {
		t.Fatal("tear of missing file accepted")
	}
}
