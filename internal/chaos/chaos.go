// Package chaos is the deterministic fault-injection layer: a Plan describes
// system faults — crash, omission, delay, duplication, payload corruption —
// as pure functions of (seed, round, agent, attempt) on simtime's
// counter-mode SplitMix64 streams, the same keying discipline the latency
// and sketch models use. No Plan holds state: whether a given message is
// dropped, duplicated, delayed, or corrupted is a hash of its coordinates,
// so a chaos scenario replays bit for bit on any machine, at any worker
// count, in any sampling order.
//
// The Plan deliberately models *system* faults, not Byzantine values: a
// faulty message here is lost or mangled in transit, never adversarially
// chosen. Byzantine behavior stays with the dgd Faulty producers and the
// aggregation filters; the chaos layer measures how gracefully those filters
// degrade when the substrate under them misbehaves too.
//
// Fault taxonomy (Liu et al., arXiv:2106.08545):
//
//   - crash: the agent stops responding from a designated round onward,
//     permanently. Equivalent to the cluster server's elimination, but
//     injected rather than observed.
//   - omission: one delivery attempt of one round's message is dropped.
//     Transient — the agent is back next round (or next attempt).
//   - delay: the message takes extra virtual time on top of its latency
//     draw, surfacing through the async collection policies.
//   - duplicate: the message is delivered twice; overlays must stay
//     idempotent.
//   - corrupt: the payload is bit-flipped in transit. CRC framing detects
//     this and the receiver reclassifies it as an omission — a corrupted
//     honest gradient must never reach a filter pretending to be honest
//     input.
//
// The zero Plan injects nothing and is the explicit no-chaos point: every
// consumer treats a disabled plan as bitwise-identical to running without
// the chaos layer at all.
package chaos

import (
	"fmt"
	"io"
	"os"

	"byzopt/internal/simtime"
)

// Reserved stream indices keying each fault kind's draw family. simtime
// reserves -1 for the straggler designation; chaos continues the negative
// range so no stream ever collides with a real (round, agent) pair.
const (
	crashPickStream  = -2 // is this agent a crasher at all
	crashRoundStream = -3 // which round a crasher dies in
	omitStream       = -4 // per-attempt omission draws
	corruptStream    = -5 // per-attempt corruption draws
	dupStream        = -6 // per-message duplication draws
	delayStream      = -7 // per-message extra-delay draws
	corruptBitStream = -8 // which bit a corruption flips
)

// Plan is a deterministic fault-injection schedule: pure data, pure
// functions. The zero value injects no faults. Rates are per-draw
// probabilities in [0, 1]; every draw is keyed by the plan Seed, the fault
// kind's reserved stream, and the message's (round, agent, attempt)
// coordinates, so draws for different kinds, agents, and attempts are
// independent and order-free.
type Plan struct {
	// Seed keys every fault draw in the plan.
	Seed int64

	// CrashRate is the probability an agent is designated a crasher; a
	// crasher stops responding from its crash round onward, permanently.
	CrashRate float64
	// CrashWindow bounds the crash round: a crasher's death round is drawn
	// uniformly from [0, CrashWindow). Required positive when CrashRate > 0
	// (a sweep sets it to the run's round count).
	CrashWindow int

	// OmitRate is the per-attempt probability a delivery is dropped.
	OmitRate float64
	// CorruptRate is the per-attempt probability a delivery is corrupted in
	// transit; detected corruption is reclassified as omission by receivers.
	CorruptRate float64
	// DupRate is the per-message probability the delivered message arrives a
	// second time.
	DupRate float64
	// DelayRate is the per-message probability the delivery is slowed by
	// Delay extra virtual time.
	DelayRate float64
	// Delay is the extra virtual time a delayed message takes; must be
	// positive when DelayRate > 0.
	Delay float64

	// Attempts is the delivery-attempt budget per (round, agent) message:
	// after a dropped (omitted or corrupted) attempt the sender retries, up
	// to Attempts total tries, each retry costing RetryDelay extra virtual
	// time. 0 means 1 — no retry.
	Attempts int
	// RetryDelay is the virtual-time backoff added per retry attempt.
	RetryDelay float64
}

// Enabled reports whether the plan can inject any fault at all. A disabled
// plan is the explicit no-chaos point: consumers must behave bitwise
// identically to running without the plan.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.CrashRate > 0 || p.OmitRate > 0 || p.CorruptRate > 0 ||
		p.DupRate > 0 || p.DelayRate > 0
}

// attempts is the effective delivery budget.
func (p *Plan) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// MaxAttempts is the effective per-message delivery budget (at least 1).
func (p *Plan) MaxAttempts() int { return p.attempts() }

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"crash rate", p.CrashRate},
		{"omit rate", p.OmitRate},
		{"corrupt rate", p.CorruptRate},
		{"duplicate rate", p.DupRate},
		{"delay rate", p.DelayRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s %v must be in [0, 1]", r.name, r.v)
		}
	}
	if p.CrashRate > 0 && p.CrashWindow <= 0 {
		return fmt.Errorf("chaos: crash rate %v needs a positive crash window, got %d", p.CrashRate, p.CrashWindow)
	}
	if p.DelayRate > 0 && !(p.Delay > 0) {
		return fmt.Errorf("chaos: delay rate %v needs a positive delay, got %v", p.DelayRate, p.Delay)
	}
	if p.Attempts < 0 {
		return fmt.Errorf("chaos: negative attempt budget %d", p.Attempts)
	}
	if p.RetryDelay < 0 {
		return fmt.Errorf("chaos: negative retry delay %v", p.RetryDelay)
	}
	return nil
}

// stream derives the per-agent sub-seed for one fault kind, so the draws of
// different kinds and agents come from disjoint counter families.
func (p *Plan) stream(kind, agent int) int64 {
	return int64(simtime.Mix(p.Seed, kind, agent))
}

// CrashRound returns the round the agent stops responding from, or -1 if
// this plan never crashes the agent. The designation and the round are per
// agent, not per round — a crasher is dead for the rest of the run.
func (p *Plan) CrashRound(agent int) int {
	if p == nil || p.CrashRate <= 0 {
		return -1
	}
	if simtime.U01(p.Seed, crashPickStream, agent) >= p.CrashRate {
		return -1
	}
	return int(simtime.U01(p.Seed, crashRoundStream, agent) * float64(p.CrashWindow))
}

// Crashed reports whether the agent has crashed by round t.
func (p *Plan) Crashed(t, agent int) bool {
	r := p.CrashRound(agent)
	return r >= 0 && t >= r
}

// Omit reports whether delivery attempt a of the agent's round-t message is
// dropped by an omission fault.
func (p *Plan) Omit(t, agent, attempt int) bool {
	if p == nil || p.OmitRate <= 0 {
		return false
	}
	return simtime.U01(p.stream(omitStream, agent), t, attempt) < p.OmitRate
}

// Corrupt reports whether delivery attempt a of the agent's round-t message
// is corrupted in transit. Receivers with CRC framing detect this and treat
// the delivery as omitted.
func (p *Plan) Corrupt(t, agent, attempt int) bool {
	if p == nil || p.CorruptRate <= 0 {
		return false
	}
	return simtime.U01(p.stream(corruptStream, agent), t, attempt) < p.CorruptRate
}

// Duplicate reports whether the agent's round-t message is delivered twice.
func (p *Plan) Duplicate(t, agent int) bool {
	if p == nil || p.DupRate <= 0 {
		return false
	}
	return simtime.U01(p.stream(dupStream, agent), t, 0) < p.DupRate
}

// ExtraDelay returns the extra virtual time the agent's round-t message
// takes: Delay when the delay fault fires, 0 otherwise.
func (p *Plan) ExtraDelay(t, agent int) float64 {
	if p == nil || p.DelayRate <= 0 {
		return 0
	}
	if simtime.U01(p.stream(delayStream, agent), t, 0) < p.DelayRate {
		return p.Delay
	}
	return 0
}

// CorruptFrame flips one deterministic bit of a wire frame in place,
// simulating transit corruption for a (round, agent) message. The flipped
// position is a hash of the plan seed and the message coordinates, so the
// damage replays exactly. Empty frames are left alone.
func (p *Plan) CorruptFrame(b []byte, t, agent int) {
	if len(b) == 0 {
		return
	}
	h := simtime.Mix(p.stream(corruptBitStream, agent), t, 0)
	b[h%uint64(len(b))] ^= 1 << ((h >> 32) % 8)
}

// Counters tallies injected faults over a run. The zero value is ready.
type Counters struct {
	// Crashed counts agents that crashed (each agent at most once).
	Crashed int `json:"crashed,omitempty"`
	// Omitted counts delivery attempts dropped by omission faults.
	Omitted int `json:"omitted,omitempty"`
	// Corrupted counts delivery attempts dropped as detected corruption.
	Corrupted int `json:"corrupted,omitempty"`
	// Duplicated counts doubly-delivered messages.
	Duplicated int `json:"duplicated,omitempty"`
	// Delayed counts messages slowed by a delay fault.
	Delayed int `json:"delayed,omitempty"`
	// Retried counts redelivery attempts made after a dropped one.
	Retried int `json:"retried,omitempty"`
	// LostRounds counts rounds where every live agent's message was lost and
	// the round proceeded with no fresh input (gracefully skipped or served
	// entirely from stale gradients).
	LostRounds int `json:"lost_rounds,omitempty"`
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Crashed += other.Crashed
	c.Omitted += other.Omitted
	c.Corrupted += other.Corrupted
	c.Duplicated += other.Duplicated
	c.Delayed += other.Delayed
	c.Retried += other.Retried
	c.LostRounds += other.LostRounds
}

// Total is the total number of injected fault events.
func (c Counters) Total() int {
	return c.Crashed + c.Omitted + c.Corrupted + c.Duplicated + c.Delayed + c.Retried
}

// IsZero reports whether no fault was recorded.
func (c Counters) IsZero() bool { return c == Counters{} }

// --- torn-write injection for durability tests ---

// TornWriter is an io.Writer that silently stops persisting after Limit
// bytes, modeling a process killed mid-write: the prefix lands, the tail is
// lost, and the writer keeps reporting success the way a crashed process's
// page cache would have. Used by checkpoint-recovery tests.
type TornWriter struct {
	W       io.Writer
	Limit   int
	written int
}

// Write forwards at most Limit total bytes to the underlying writer and
// silently swallows the rest, always reporting full success.
func (t *TornWriter) Write(p []byte) (int, error) {
	remain := t.Limit - t.written
	if remain <= 0 {
		return len(p), nil
	}
	head := p
	if len(head) > remain {
		head = head[:remain]
	}
	n, err := t.W.Write(head)
	t.written += n
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// TearFile truncates a file to keep bytes, injecting a torn write after the
// fact: the tool for tests that need a checkpoint log or snapshot to end
// mid-record exactly as a crash mid-flush would leave it.
func TearFile(path string, keep int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep < 0 || keep > info.Size() {
		return fmt.Errorf("chaos: tear %s at %d outside [0, %d]", path, keep, info.Size())
	}
	return os.Truncate(path, keep)
}
