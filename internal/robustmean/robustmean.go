// Package robustmean applies the paper's framework to robust mean
// estimation (Section 2.3): given n data points of which up to f are
// arbitrary outliers, estimate the mean of the honest points.
//
// The reduction is the one the paper sketches: agent i holds the cost
// Q_i(x) = ||x - x_i||², so the minimizer of any subset aggregate is that
// subset's sample mean, subset minimization is closed-form, and the whole
// Section-3 theory applies verbatim. The package offers three estimators:
//
//   - Exhaustive: the Theorem-2 algorithm specialized to means (subset
//     means instead of least-squares solves), carrying its (f, 2ε)
//     guarantee with ε the honest points' spread parameter;
//   - ViaDGD: the Section-4 route — gradients of Q_i are 2(x - x_i), so
//     filtered gradient descent yields a streaming robust mean;
//   - CoordinateMedian: the coordinate-wise median baseline.
package robustmean

import (
	"errors"
	"fmt"
	"math/rand"

	"byzopt/internal/aggregate"
	"byzopt/internal/core"
	"byzopt/internal/costfunc"
	"byzopt/internal/dgd"
	"byzopt/internal/matrix"
	"byzopt/internal/vecmath"
)

// ErrArgs is returned (wrapped) for invalid inputs.
var ErrArgs = errors.New("robustmean: invalid arguments")

// meanProblem adapts a point set to core.Problem: subset aggregates of
// ||x - x_i||² minimize at the subset mean.
type meanProblem struct {
	points [][]float64
	dim    int
}

var _ core.Problem = (*meanProblem)(nil)

// NewProblem wraps the points as a core.Problem so the generic redundancy
// and resilience machinery can interrogate the instance.
func NewProblem(points [][]float64) (core.Problem, error) {
	mp, err := newMeanProblem(points)
	if err != nil {
		return nil, err
	}
	return mp, nil
}

func newMeanProblem(points [][]float64) (*meanProblem, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("no points: %w", ErrArgs)
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("zero-dimensional points: %w", ErrArgs)
	}
	cp := make([][]float64, len(points))
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("point %d has dim %d, want %d: %w", i, len(p), d, ErrArgs)
		}
		cp[i] = vecmath.Clone(p)
	}
	return &meanProblem{points: cp, dim: d}, nil
}

// N implements core.Problem.
func (m *meanProblem) N() int { return len(m.points) }

// Dim implements core.Problem.
func (m *meanProblem) Dim() int { return m.dim }

// MinimizeSubset implements core.Problem: the subset sample mean.
func (m *meanProblem) MinimizeSubset(idx []int) ([]float64, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("empty subset: %w", ErrArgs)
	}
	sub := make([][]float64, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(m.points) {
			return nil, fmt.Errorf("index %d out of [0, %d): %w", j, len(m.points), ErrArgs)
		}
		sub[i] = m.points[j]
	}
	return vecmath.Mean(sub)
}

// Exhaustive runs the Theorem-2 algorithm on the point set: the returned
// estimate is within 2ε of the mean of every (n-f)-subset of honest points,
// where ε is the instance's (2f, ε)-redundancy (here: how far subset means
// drift when 2f points are removed).
func Exhaustive(points [][]float64, f int) (*core.ExhaustiveResult, error) {
	p, err := newMeanProblem(points)
	if err != nil {
		return nil, err
	}
	res, err := core.ExhaustiveResilient(p, f)
	if err != nil {
		return nil, fmt.Errorf("robustmean: %w", err)
	}
	return res, nil
}

// Spread measures the instance's (2f, ε)-redundancy: the worst drift of a
// subset mean when shrinking from n-f to n-2f points. For i.i.d. honest
// points it scales with the sample noise, quantifying the achievable
// estimation accuracy (Theorem 2 gives 2ε).
func Spread(points [][]float64, f int) (float64, error) {
	p, err := newMeanProblem(points)
	if err != nil {
		return 0, err
	}
	rep, err := core.MeasureRedundancy(p, f, core.AtLeastSize)
	if err != nil {
		return 0, fmt.Errorf("robustmean: %w", err)
	}
	return rep.Epsilon, nil
}

// ViaDGD estimates the robust mean by filtered gradient descent: each point
// contributes the cost ||x - x_i||² (gradient 2(x - x_i)) and the filter
// suppresses outlier gradients. rounds controls the iteration budget; the
// filter must tolerate f faults at n = len(points).
func ViaDGD(points [][]float64, f int, filter aggregate.Filter, rounds int) ([]float64, error) {
	p, err := newMeanProblem(points)
	if err != nil {
		return nil, err
	}
	if filter == nil {
		return nil, fmt.Errorf("nil filter: %w", ErrArgs)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("rounds = %d: %w", rounds, ErrArgs)
	}
	agents := make([]dgd.Agent, p.N())
	for i, pt := range p.points {
		cost, err := pointCost(pt)
		if err != nil {
			return nil, err
		}
		agents[i], err = dgd.NewHonest(cost)
		if err != nil {
			return nil, err
		}
	}
	// Start from the coordinate-wise median: a cheap f-robust warm start.
	start, err := CoordinateMedian(points, f)
	if err != nil {
		return nil, err
	}
	res, err := dgd.Run(dgd.Config{
		Agents: agents,
		F:      f,
		Filter: filter,
		Steps:  dgd.Diminishing{C: 0.5 / float64(p.N()), P: 1},
		X0:     start,
		Rounds: rounds,
	})
	if err != nil {
		return nil, fmt.Errorf("robustmean: %w", err)
	}
	return res.X, nil
}

// Cloud draws a deterministic Gaussian point cloud around the all-ones mean:
// point i is (1, ..., 1) + spread·N(0, I). The same (n, d, spread, seed)
// always yields the same cloud, so sweep grid points over robust mean
// estimation replay exactly.
func Cloud(n, d int, spread float64, seed int64) ([][]float64, error) {
	if n < 1 || d < 1 {
		return nil, fmt.Errorf("n=%d d=%d must be positive: %w", n, d, ErrArgs)
	}
	if spread < 0 {
		return nil, fmt.Errorf("negative spread %v: %w", spread, ErrArgs)
	}
	r := rand.New(rand.NewSource(seed))
	points := make([][]float64, n)
	for i := range points {
		p := vecmath.Ones(d)
		for j := range p {
			p[j] += spread * r.NormFloat64()
		}
		points[i] = p
	}
	return points, nil
}

// PointCost builds agent i's cost ||x - p||² as a quadratic form
// (P = 2I, q = -2p, c = p·p), the per-agent cost of the Section-2.3
// reduction — exported so the sweep problem registry can build robust-mean
// agents without re-deriving the form.
func PointCost(p []float64) (costfunc.Differentiable, error) {
	return pointCost(p)
}

// pointCost builds ||x - p||² as a quadratic form: P = 2I, q = -2p, c = p.p.
func pointCost(p []float64) (costfunc.Differentiable, error) {
	d := len(p)
	id, err := matrix.Identity(d)
	if err != nil {
		return nil, err
	}
	return costfunc.NewQuadraticForm(id.Scale(2), vecmath.Scale(-2, p), vecmath.NormSq(p))
}

// CoordinateMedian returns the coordinate-wise median of the points, the
// classic baseline estimator (robust per coordinate for f < n/2).
func CoordinateMedian(points [][]float64, f int) ([]float64, error) {
	p, err := newMeanProblem(points)
	if err != nil {
		return nil, err
	}
	if f < 0 || 2*f >= p.N() {
		return nil, fmt.Errorf("need 0 <= f < n/2, got n=%d f=%d: %w", p.N(), f, ErrArgs)
	}
	return aggregate.CWMedian{}.Aggregate(p.points, f)
}
