package robustmean

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"byzopt/internal/aggregate"
	"byzopt/internal/core"
	"byzopt/internal/vecmath"
)

// cluster draws honest points around center with the given noise, then
// appends outliers far away.
func cluster(r *rand.Rand, honest, outliers, d int, center []float64, noise float64) [][]float64 {
	points := make([][]float64, 0, honest+outliers)
	for i := 0; i < honest; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = center[j] + r.NormFloat64()*noise
		}
		points = append(points, p)
	}
	for i := 0; i < outliers; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = 1e4 * (1 + r.Float64())
		}
		points = append(points, p)
	}
	return points
}

func honestMean(points [][]float64, honest int) []float64 {
	m, err := vecmath.Mean(points[:honest])
	if err != nil {
		panic(err)
	}
	return m
}

func TestProblemAdapter(t *testing.T) {
	p, err := NewProblem([][]float64{{0, 0}, {2, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.Dim() != 2 {
		t.Fatalf("N/Dim = %d/%d", p.N(), p.Dim())
	}
	m, err := p.MinimizeSubset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(m, []float64{1, 0}, 1e-12) {
		t.Fatalf("subset mean = %v", m)
	}
	if _, err := p.MinimizeSubset(nil); !errors.Is(err, ErrArgs) {
		t.Errorf("empty subset: %v", err)
	}
	if _, err := p.MinimizeSubset([]int{7}); !errors.Is(err, ErrArgs) {
		t.Errorf("bad index: %v", err)
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil); !errors.Is(err, ErrArgs) {
		t.Errorf("no points: %v", err)
	}
	if _, err := NewProblem([][]float64{{}}); !errors.Is(err, ErrArgs) {
		t.Errorf("zero dim: %v", err)
	}
	if _, err := NewProblem([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrArgs) {
		t.Errorf("ragged: %v", err)
	}
}

func TestExhaustiveIgnoresOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	center := []float64{3, -2}
	points := cluster(r, 7, 2, 2, center, 0.1)
	res, err := Exhaustive(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vecmath.Dist(res.X, honestMean(points, 7))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.2 {
		t.Errorf("exhaustive estimate %v is %v from the honest mean", res.X, d)
	}
	// The winning subset must exclude both outliers (indices 7, 8).
	for _, i := range res.Subset {
		if i >= 7 {
			t.Errorf("outlier %d selected: %v", i, res.Subset)
		}
	}
}

func TestSpreadScalesWithNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	center := []float64{0, 0}
	tight := cluster(r, 9, 0, 2, center, 0.01)
	loose := cluster(r, 9, 0, 2, center, 1.0)
	sTight, err := Spread(tight, 2)
	if err != nil {
		t.Fatal(err)
	}
	sLoose, err := Spread(loose, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sTight >= sLoose {
		t.Errorf("spread should grow with noise: %v vs %v", sTight, sLoose)
	}
	if sTight > 0.05 {
		t.Errorf("tight cluster spread = %v", sTight)
	}
}

func TestViaDGDMatchesHonestMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	center := []float64{-1, 4, 2}
	points := cluster(r, 10, 2, 3, center, 0.05)
	est, err := ViaDGD(points, 2, aggregate.CWTM{}, 400)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vecmath.Dist(est, honestMean(points, 10))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.25 {
		t.Errorf("DGD estimate %v is %v from the honest mean", est, d)
	}
}

func TestViaDGDValidation(t *testing.T) {
	points := [][]float64{{1}, {2}, {3}}
	if _, err := ViaDGD(points, 1, nil, 10); !errors.Is(err, ErrArgs) {
		t.Errorf("nil filter: %v", err)
	}
	if _, err := ViaDGD(points, 1, aggregate.CWTM{}, 0); !errors.Is(err, ErrArgs) {
		t.Errorf("zero rounds: %v", err)
	}
}

func TestCoordinateMedianRobust(t *testing.T) {
	points := [][]float64{{1, 1}, {1.2, 0.8}, {0.9, 1.1}, {1e6, -1e6}}
	m, err := CoordinateMedian(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vecmath.Dist(m, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.5 {
		t.Errorf("median dragged to %v", m)
	}
	if _, err := CoordinateMedian(points, 2); !errors.Is(err, ErrArgs) {
		t.Errorf("f too large: %v", err)
	}
}

// TestPropExhaustiveWithinTwoEps is Theorem 2 specialized to means: the
// estimate must be within 2 eps of every (n-f)-subset mean of honest
// points, with eps measured on the full (honest-only) instance.
func TestPropExhaustiveWithinTwoEps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(3)
		fCount := 1
		d := 1 + r.Intn(3)
		center := make([]float64, d)
		for j := range center {
			center[j] = r.NormFloat64() * 5
		}
		points := cluster(r, n, 0, d, center, 0.5) // all honest
		eps, err := Spread(points, fCount)
		if err != nil {
			return false
		}
		res, err := Exhaustive(points, fCount)
		if err != nil {
			return false
		}
		p, err := NewProblem(points)
		if err != nil {
			return false
		}
		honest := make([]int, n)
		for i := range honest {
			honest[i] = i
		}
		resil, err := core.MeasureResilience(p, fCount, honest, res.X)
		if err != nil {
			return false
		}
		return resil.MaxDistance <= 2*eps+1e-9
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
