package byzantine

import (
	"errors"
	"math"
	"testing"

	"byzopt/internal/vecmath"
)

func TestGradientReverse(t *testing.T) {
	g := []float64{1, -2, 3}
	out, err := GradientReverse{}.Apply(0, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(out, []float64{-1, 2, -3}, 0) {
		t.Fatalf("reverse = %v", out)
	}
	if g[0] != 1 {
		t.Error("input mutated")
	}
}

func TestScaledReverse(t *testing.T) {
	out, err := ScaledReverse{Factor: 2}.Apply(0, 0, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(out, []float64{-2, 2}, 0) {
		t.Fatalf("scaled reverse = %v", out)
	}
	if _, err := (ScaledReverse{Factor: 0}).Apply(0, 0, []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("factor 0: %v", err)
	}
}

func TestRandomGaussianDeterministicPerRoundAgent(t *testing.T) {
	g, err := NewRandomGaussian(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Apply(3, 1, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Apply(3, 1, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(a, b, 0) {
		t.Error("same (round, agent) should replay identically")
	}
	c, err := g.Apply(4, 1, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Equal(a, c, 1e-9) {
		t.Error("different rounds should differ")
	}
	d, err := g.Apply(3, 2, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Equal(a, d, 1e-9) {
		t.Error("different agents should differ")
	}
}

func TestRandomGaussianScale(t *testing.T) {
	g, err := NewRandomGaussian(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical std over many draws should be near 200.
	var sum, sumSq float64
	count := 0
	for round := 0; round < 200; round++ {
		v, err := g.Apply(round, 0, make([]float64, 10))
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range v {
			sum += x
			sumSq += x * x
			count++
		}
	}
	mean := sum / float64(count)
	std := math.Sqrt(sumSq/float64(count) - mean*mean)
	if math.Abs(std-200) > 20 {
		t.Errorf("empirical std = %v, want ~200", std)
	}
	if _, err := NewRandomGaussian(0, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("sigma 0: %v", err)
	}
}

func TestConstant(t *testing.T) {
	c, err := NewConstant([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Apply(9, 9, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(out, []float64{5, 5}, 0) {
		t.Fatalf("constant = %v", out)
	}
	if _, err := c.Apply(0, 0, []float64{0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := NewConstant(nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty constant: %v", err)
	}
	out[0] = 77 // mutating the output must not corrupt future rounds
	again, err := c.Apply(1, 0, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 5 {
		t.Error("constant output aliased internal state")
	}
}

func TestZero(t *testing.T) {
	out, err := Zero{}.Apply(0, 0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Norm(out) != 0 {
		t.Fatalf("zero = %v", out)
	}
}

func TestCoordinateSpike(t *testing.T) {
	out, err := CoordinateSpike{Coordinate: 1, Magnitude: 1e9}.Apply(0, 0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 1e9 || out[2] != 3 {
		t.Fatalf("spike = %v", out)
	}
	if _, err := (CoordinateSpike{Coordinate: 5}).Apply(0, 0, []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("out of range: %v", err)
	}
}

func TestIPM(t *testing.T) {
	honest := [][]float64{{2, 0}, {4, 0}}
	out, err := InnerProductManipulation{Epsilon: 0.5}.ApplyOmniscient(0, 0, []float64{1, 1}, honest)
	if err != nil {
		t.Fatal(err)
	}
	// mean = (3, 0); -0.5 * mean = (-1.5, 0)
	if !vecmath.Equal(out, []float64{-1.5, 0}, 1e-12) {
		t.Fatalf("ipm = %v", out)
	}
	// Fallback without honest view.
	fb, err := InnerProductManipulation{Epsilon: 0.5}.ApplyOmniscient(0, 0, []float64{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(fb, []float64{-1, -1}, 1e-12) {
		t.Fatalf("ipm fallback = %v", fb)
	}
	if _, err := (InnerProductManipulation{Epsilon: 0}).Apply(0, 0, []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("epsilon 0: %v", err)
	}
}

func TestALIE(t *testing.T) {
	honest := [][]float64{{1, 0}, {3, 0}}
	// mean = (2, 0), std = (1, 0); z = 2 -> (4, 0)
	out, err := ALittleIsEnough{Z: 2}.ApplyOmniscient(0, 0, []float64{0, 0}, honest)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(out, []float64{4, 0}, 1e-12) {
		t.Fatalf("alie = %v", out)
	}
	fb, err := ALittleIsEnough{Z: 1}.ApplyOmniscient(0, 0, []float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(fb, []float64{2, 2}, 1e-12) {
		t.Fatalf("alie fallback = %v", fb)
	}
}

func TestDelayed(t *testing.T) {
	d := &Delayed{Activate: 5, Inner: GradientReverse{}}
	g := []float64{1, 2}
	early, err := d.Apply(4, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(early, g, 0) {
		t.Fatalf("delayed early = %v", early)
	}
	late, err := d.Apply(5, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(late, []float64{-1, -2}, 0) {
		t.Fatalf("delayed late = %v", late)
	}
	bad := &Delayed{Activate: 0}
	if _, err := bad.Apply(0, 0, g); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inner: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out, err := b.Apply(0, 0, []float64{1, 2})
		if err != nil {
			t.Fatalf("%s apply: %v", name, err)
		}
		if len(out) != 2 {
			t.Errorf("%s output dim = %d", name, len(out))
		}
	}
	if _, err := New("nope", 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown behavior: %v", err)
	}
}
