// Package byzantine models the faulty agents' behaviors. A Byzantine agent
// may report anything at all (Lamport et al.); this package collects the
// concrete adversaries the paper simulates — gradient-reverse and random
// Gaussian (Section 5), label-flip (Appendix K, realized at the data level
// in package mlsim) — plus standard colluding attacks from the literature
// the paper cites, used by the ablation benches.
//
// Behaviors are deterministic given their seed, matching the paper's
// deterministic-algorithm framework and keeping every experiment
// reproducible.
package byzantine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"byzopt/internal/vecmath"
)

// ErrBadConfig is returned (wrapped) for invalid behavior parameters.
var ErrBadConfig = errors.New("byzantine: invalid configuration")

// Behavior computes the gradient a Byzantine agent reports to the server in
// place of its true gradient.
type Behavior interface {
	// Name returns a short stable identifier.
	Name() string
	// Apply returns the faulty gradient for the given round. trueGrad is the
	// gradient a correct agent would have sent; implementations must not
	// mutate it.
	Apply(round, agentID int, trueGrad []float64) ([]float64, error)
}

// Omniscient is an optional extension for colluding adversaries that observe
// the honest agents' gradients before choosing their own (the strongest
// adversary model used in the gradient-filter literature).
type Omniscient interface {
	Behavior
	// ApplyOmniscient returns the faulty gradient given all honest gradients
	// of the round. Implementations must not mutate honestGrads.
	ApplyOmniscient(round, agentID int, trueGrad []float64, honestGrads [][]float64) ([]float64, error)
}

// --- gradient reverse ---

// GradientReverse sends the negation of the true gradient: g -> -g.
// This is the "gradient-reverse" fault of Section 5.
type GradientReverse struct{}

var _ Behavior = GradientReverse{}

// Name implements Behavior.
func (GradientReverse) Name() string { return "gradient-reverse" }

// Apply implements Behavior.
func (GradientReverse) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	return vecmath.Neg(trueGrad), nil
}

// --- scaled reverse ---

// ScaledReverse sends -Factor * g: a tunable variant of gradient reversal
// ("a-little-is-enough"-style small factors evade norm-based filters, large
// factors maximize damage against averaging).
type ScaledReverse struct {
	Factor float64
}

var _ Behavior = ScaledReverse{}

// Name implements Behavior.
func (s ScaledReverse) Name() string { return fmt.Sprintf("scaled-reverse-%g", s.Factor) }

// Apply implements Behavior.
func (s ScaledReverse) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	if s.Factor <= 0 {
		return nil, fmt.Errorf("scaled reverse factor %v must be positive: %w", s.Factor, ErrBadConfig)
	}
	return vecmath.Scale(-s.Factor, trueGrad), nil
}

// --- random Gaussian ---

// RandomGaussian sends an i.i.d. Gaussian vector with mean zero and isotropic
// standard deviation Sigma, the "random" fault of Section 5 (σ = 200 there).
// Draws are deterministic given (seed, round, agentID) so that executions
// replay exactly regardless of evaluation order.
type RandomGaussian struct {
	sigma float64
	seed  int64
}

var _ Behavior = (*RandomGaussian)(nil)

// NewRandomGaussian builds the behavior; sigma must be positive.
func NewRandomGaussian(sigma float64, seed int64) (*RandomGaussian, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("gaussian sigma %v must be positive: %w", sigma, ErrBadConfig)
	}
	return &RandomGaussian{sigma: sigma, seed: seed}, nil
}

// Name implements Behavior.
func (g *RandomGaussian) Name() string { return fmt.Sprintf("random-%g", g.sigma) }

// Apply implements Behavior.
func (g *RandomGaussian) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	// Derive a per-(round, agent) stream so replays are order-independent.
	const (
		mixRound int64 = 0x1E3779B97F4A7C15
		mixAgent int64 = 0x3F58476D1CE4E5B9
	)
	h := g.seed ^ (int64(round)+1)*mixRound ^ (int64(agentID)+1)*mixAgent
	r := rand.New(rand.NewSource(h))
	out := make([]float64, len(trueGrad))
	for i := range out {
		out[i] = r.NormFloat64() * g.sigma
	}
	return out, nil
}

// --- constant ---

// Constant always sends a fixed vector, whatever the round.
type Constant struct {
	vec []float64
}

var _ Behavior = (*Constant)(nil)

// NewConstant builds the behavior from a non-empty vector.
func NewConstant(v []float64) (*Constant, error) {
	if len(v) == 0 {
		return nil, fmt.Errorf("constant behavior needs a non-empty vector: %w", ErrBadConfig)
	}
	return &Constant{vec: vecmath.Clone(v)}, nil
}

// Name implements Behavior.
func (c *Constant) Name() string { return "constant" }

// Apply implements Behavior. It errors if the round's gradient dimension
// does not match the configured vector.
func (c *Constant) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	if len(trueGrad) != len(c.vec) {
		return nil, fmt.Errorf("constant dim %d vs gradient dim %d: %w", len(c.vec), len(trueGrad), ErrBadConfig)
	}
	return vecmath.Clone(c.vec), nil
}

// --- zero ---

// Zero sends the all-zeros vector: a "lazy" fault that stalls averaging-based
// methods without tripping norm filters.
type Zero struct{}

var _ Behavior = Zero{}

// Name implements Behavior.
func (Zero) Name() string { return "zero" }

// Apply implements Behavior.
func (Zero) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	return vecmath.Zeros(len(trueGrad)), nil
}

// --- coordinate spike ---

// CoordinateSpike plants a huge value in a single coordinate and reports the
// true gradient elsewhere, stressing coordinate-wise filters.
type CoordinateSpike struct {
	Coordinate int
	Magnitude  float64
}

var _ Behavior = CoordinateSpike{}

// Name implements Behavior.
func (c CoordinateSpike) Name() string { return fmt.Sprintf("spike-%d", c.Coordinate) }

// Apply implements Behavior.
func (c CoordinateSpike) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	if c.Coordinate < 0 || c.Coordinate >= len(trueGrad) {
		return nil, fmt.Errorf("spike coordinate %d out of range [0,%d): %w", c.Coordinate, len(trueGrad), ErrBadConfig)
	}
	out := vecmath.Clone(trueGrad)
	out[c.Coordinate] = c.Magnitude
	return out, nil
}

// --- inner-product manipulation (colluding) ---

// InnerProductManipulation is the colluding attack of Xie et al.: every
// faulty agent sends -Epsilon times the mean of the honest gradients, making
// the aggregate's inner product with the true descent direction negative
// while keeping norms unsuspicious.
type InnerProductManipulation struct {
	Epsilon float64
}

var _ Omniscient = InnerProductManipulation{}

// Name implements Behavior.
func (a InnerProductManipulation) Name() string { return fmt.Sprintf("ipm-%g", a.Epsilon) }

// Apply implements Behavior; without visibility of honest gradients it
// degrades to scaled reversal of the agent's own gradient.
func (a InnerProductManipulation) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	if a.Epsilon <= 0 {
		return nil, fmt.Errorf("ipm epsilon %v must be positive: %w", a.Epsilon, ErrBadConfig)
	}
	return vecmath.Scale(-a.Epsilon, trueGrad), nil
}

// ApplyOmniscient implements Omniscient.
func (a InnerProductManipulation) ApplyOmniscient(round, agentID int, trueGrad []float64, honestGrads [][]float64) ([]float64, error) {
	if a.Epsilon <= 0 {
		return nil, fmt.Errorf("ipm epsilon %v must be positive: %w", a.Epsilon, ErrBadConfig)
	}
	if len(honestGrads) == 0 {
		return a.Apply(round, agentID, trueGrad)
	}
	m, err := vecmath.Mean(honestGrads)
	if err != nil {
		return nil, err
	}
	vecmath.ScaleInPlace(-a.Epsilon, m)
	return m, nil
}

// --- a little is enough (colluding) ---

// ALittleIsEnough is the colluding attack of Baruch et al.: faulty agents
// send mean(honest) + Z * std(honest) per coordinate, a perturbation large
// enough to bias aggregation yet small enough to blend into the honest
// spread.
type ALittleIsEnough struct {
	Z float64
}

var _ Omniscient = ALittleIsEnough{}

// Name implements Behavior.
func (a ALittleIsEnough) Name() string { return fmt.Sprintf("alie-%g", a.Z) }

// Apply implements Behavior; without visibility it perturbs the agent's own
// gradient by Z per coordinate, a weak fallback.
func (a ALittleIsEnough) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	out := vecmath.Clone(trueGrad)
	for i := range out {
		out[i] += a.Z
	}
	return out, nil
}

// ApplyOmniscient implements Omniscient.
func (a ALittleIsEnough) ApplyOmniscient(round, agentID int, trueGrad []float64, honestGrads [][]float64) ([]float64, error) {
	if len(honestGrads) == 0 {
		return a.Apply(round, agentID, trueGrad)
	}
	m, err := vecmath.Mean(honestGrads)
	if err != nil {
		return nil, err
	}
	d := len(m)
	std := make([]float64, d)
	for k := 0; k < d; k++ {
		var s float64
		for _, g := range honestGrads {
			dev := g[k] - m[k]
			s += dev * dev
		}
		std[k] = math.Sqrt(s / float64(len(honestGrads)))
	}
	out := make([]float64, d)
	for k := 0; k < d; k++ {
		out[k] = m[k] + a.Z*std[k]
	}
	return out, nil
}

// --- delayed (mixed honest/faulty phases) ---

// Delayed behaves honestly until round Activate, then delegates to Inner.
// It models sleeper faults that pass an initial vetting period.
type Delayed struct {
	Activate int
	Inner    Behavior
}

var _ Behavior = (*Delayed)(nil)

// Name implements Behavior.
func (d *Delayed) Name() string { return fmt.Sprintf("delayed-%d-%s", d.Activate, d.Inner.Name()) }

// Apply implements Behavior.
func (d *Delayed) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	if d.Inner == nil {
		return nil, fmt.Errorf("delayed behavior without inner behavior: %w", ErrBadConfig)
	}
	if round < d.Activate {
		return vecmath.Clone(trueGrad), nil
	}
	return d.Inner.Apply(round, agentID, trueGrad)
}

// --- broadcast equivocation (peer-to-peer substrate) ---

// Equivocate is the adversary of the peer-to-peer architecture: at the
// gradient level it reverses its true gradient (exactly GradientReverse),
// and it additionally implements the p2p substrate's broadcast-distorter
// contract — Relay pseudo-randomly garbles the values it forwards while
// relaying other peers' broadcasts, the equivocation attack Byzantine
// broadcast exists to defeat. Server-based substrates have no relay step, so
// there the behavior degrades to plain gradient reversal; only the p2p
// backend can express the equivocation half (it detects Relay through the
// dgd.Faulty wrapper's Behavior accessor).
type Equivocate struct {
	seed int64
}

var _ Behavior = (*Equivocate)(nil)

// NewEquivocate builds the behavior; the seed drives the relay garbling.
func NewEquivocate(seed int64) *Equivocate { return &Equivocate{seed: seed} }

// Name implements Behavior.
func (*Equivocate) Name() string { return "equivocate" }

// Apply implements Behavior: gradient reversal, the strongest lie the
// behavior can tell about its own cost.
func (*Equivocate) Apply(round, agentID int, trueGrad []float64) ([]float64, error) {
	return vecmath.Neg(trueGrad), nil
}

// Relay implements the p2p package's Distorter contract structurally (this
// package sits below p2p, so the interface is satisfied by shape, not by
// name): given the EIG tree path and the recipient, it deterministically
// chooses between the truth, the protocol default, garbage, and per-recipient
// splits — the same mixed strategy the p2p property tests use to search for
// agreement violations.
func (e *Equivocate) Relay(path []int, recipient int, honest string) string {
	h := e.seed
	for _, p := range path {
		h = h*31 + int64(p) + 7
	}
	h = h*31 + int64(recipient)
	// h & 3, not h % 4: sweep-derived seeds are negative about half the
	// time, and a negative remainder would collapse the strategy to two of
	// its four cases.
	switch h & 3 {
	case 0:
		return honest // sometimes telling the truth is the best lie
	case 1:
		return "" // the protocol's default value ⊥
	case 2:
		return "garbage-" + fmt.Sprint(h&0xff)
	default:
		return "split-" + fmt.Sprint(recipient%3)
	}
}

// New constructs a behavior from a registry name. Recognized names:
// gradient-reverse, random (sigma 200, the paper's Section-5 value), zero,
// ipm, alie, equivocate (gradient reversal plus broadcast-layer
// equivocation, realized only by the p2p substrate).
func New(name string, seed int64) (Behavior, error) {
	switch name {
	case "gradient-reverse":
		return GradientReverse{}, nil
	case "random":
		return NewRandomGaussian(200, seed)
	case "zero":
		return Zero{}, nil
	case "ipm":
		return InnerProductManipulation{Epsilon: 0.5}, nil
	case "alie":
		return ALittleIsEnough{Z: 1.5}, nil
	case "equivocate":
		return NewEquivocate(seed), nil
	default:
		return nil, fmt.Errorf("byzantine: unknown behavior %q: %w", name, ErrBadConfig)
	}
}

// Names lists the registry names accepted by New, in stable order.
func Names() []string {
	return []string{"gradient-reverse", "random", "zero", "ipm", "alie", "equivocate"}
}
