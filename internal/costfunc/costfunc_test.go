package costfunc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"byzopt/internal/matrix"
	"byzopt/internal/vecmath"
)

func mustLS(t *testing.T, rows [][]float64, b []float64) *LeastSquares {
	t.Helper()
	a, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestLeastSquaresEvalGrad(t *testing.T) {
	// Q(x) = (3 - x1)^2 + (4 - x2)^2
	q := mustLS(t, [][]float64{{1, 0}, {0, 1}}, []float64{3, 4})
	v, err := q.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-25) > 1e-12 {
		t.Fatalf("Eval = %v", v)
	}
	g, err := q.Grad([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(g, []float64{-6, -8}, 1e-12) {
		t.Fatalf("Grad = %v", g)
	}
	min, err := q.Minimum()
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(min, []float64{3, 4}, 1e-10) {
		t.Fatalf("Minimum = %v", min)
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	if _, err := NewLeastSquares(nil, nil); err == nil {
		t.Error("nil design should error")
	}
	a, err := matrix.FromRows([][]float64{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLeastSquares(a, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("row mismatch: %v", err)
	}
	q := mustLS(t, [][]float64{{1, 0}}, []float64{1})
	if _, err := q.Eval([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("eval dim: %v", err)
	}
	if _, err := q.Grad([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("grad dim: %v", err)
	}
}

func TestSingleRowLeastSquares(t *testing.T) {
	q, err := NewSingleRowLeastSquares([]float64{2, -1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Q(x) = (5 - 2x1 + x2)^2 at (1, 1) = 16
	v, err := q.Eval([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-16) > 1e-12 {
		t.Fatalf("Eval = %v", v)
	}
	if _, err := NewSingleRowLeastSquares(nil, 0); err == nil {
		t.Error("empty row should error")
	}
}

func TestLeastSquaresHessian(t *testing.T) {
	q := mustLS(t, [][]float64{{1, 0}, {0, 2}}, []float64{0, 0})
	h := q.Hessian()
	want, err := matrix.New(2, 2, []float64{2, 0, 0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(want, 1e-12) {
		t.Fatalf("Hessian = %v", h)
	}
}

func TestLeastSquaresAccessorsAreCopies(t *testing.T) {
	q := mustLS(t, [][]float64{{1, 0}}, []float64{5})
	d := q.Design()
	d.Set(0, 0, 99)
	r := q.Response()
	r[0] = 99
	v, err := q.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Error("accessors alias internal state")
	}
}

func TestQuadraticForm(t *testing.T) {
	p, err := matrix.New(2, 2, []float64{2, 0, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuadraticForm(p, []float64{-2, -4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// f(x) = x1^2 + 2x2^2 - 2x1 - 4x2 + 3, grad = (2x1-2, 4x2-4), min at (1, 1)
	min, err := q.Minimum()
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(min, []float64{1, 1}, 1e-10) {
		t.Fatalf("Minimum = %v", min)
	}
	g, err := q.Grad([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Norm(g) > 1e-10 {
		t.Fatalf("grad at min = %v", g)
	}
	v, err := q.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3) > 1e-12 {
		t.Fatalf("Eval(0) = %v", v)
	}
}

func TestQuadraticFormValidation(t *testing.T) {
	if _, err := NewQuadraticForm(nil, nil, 0); err == nil {
		t.Error("nil P should error")
	}
	p, err := matrix.New(2, 2, []float64{1, 2, 3, 4}) // asymmetric
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuadraticForm(p, []float64{0, 0}, 0); err == nil {
		t.Error("asymmetric P should error")
	}
	sym, err := matrix.New(2, 2, []float64{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuadraticForm(sym, []float64{0}, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestLogisticGradMatchesNumeric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if r.Float64() < 0.5 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	l, err := NewLogistic(xs, ys, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.3, -0.2, 0.7}
	g, err := l.Grad(w)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := NumericGrad(l, w, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(g, ng, 1e-5) {
		t.Fatalf("logistic grad %v vs numeric %v", g, ng)
	}
}

func TestLogisticValidation(t *testing.T) {
	if _, err := NewLogistic(nil, nil, 0); err == nil {
		t.Error("empty logistic should error")
	}
	if _, err := NewLogistic([][]float64{{1}}, []float64{2}, 0); err == nil {
		t.Error("bad label should error")
	}
	if _, err := NewLogistic([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative reg should error")
	}
	if _, err := NewLogistic([][]float64{{1}, {1, 2}}, []float64{1, -1}, 0); !errors.Is(err, ErrDimension) {
		t.Error("ragged points should error")
	}
}

func TestLogisticExtremeArguments(t *testing.T) {
	l, err := NewLogistic([][]float64{{1}}, []float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Very large weights should not overflow the loss.
	v, err := l.Eval([]float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("loss at huge margin = %v", v)
	}
	v, err = l.Eval([]float64{-1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 999 {
		t.Fatalf("loss at huge negative margin = %v", v)
	}
}

func TestHingeEvalGrad(t *testing.T) {
	// One point x = (1, 0), y = +1. At w = 0, margin violated: loss 1.
	h, err := NewHinge([][]float64{{1, 0}}, []float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("hinge eval = %v", v)
	}
	g, err := h.Grad([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(g, []float64{-1, 0}, 1e-12) {
		t.Fatalf("hinge grad = %v", g)
	}
	// Far side of the margin: zero loss and zero gradient.
	v, err = h.Eval([]float64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("hinge satisfied eval = %v", v)
	}
	g, err = h.Grad([]float64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Norm(g) != 0 {
		t.Fatalf("hinge satisfied grad = %v", g)
	}
}

func TestHingeValidation(t *testing.T) {
	if _, err := NewHinge(nil, nil, 0); err == nil {
		t.Error("empty hinge should error")
	}
	if _, err := NewHinge([][]float64{{1}}, []float64{0}, 0); err == nil {
		t.Error("bad hinge label should error")
	}
	if _, err := NewHinge([][]float64{{1}}, []float64{1}, -0.5); err == nil {
		t.Error("negative reg should error")
	}
}

func TestSum(t *testing.T) {
	q1 := mustLS(t, [][]float64{{1, 0}}, []float64{2})
	q2 := mustLS(t, [][]float64{{0, 1}}, []float64{4})
	s, err := NewSum(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	v, err := s.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-20) > 1e-12 {
		t.Fatalf("sum eval = %v", v)
	}
	g, err := s.Grad([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(g, []float64{-4, -8}, 1e-12) {
		t.Fatalf("sum grad = %v", g)
	}
}

func TestSumValidation(t *testing.T) {
	if _, err := NewSum(); err == nil {
		t.Error("empty sum should error")
	}
	q1 := mustLS(t, [][]float64{{1, 0}}, []float64{2})
	q2 := mustLS(t, [][]float64{{1}}, []float64{2})
	if _, err := NewSum(q1, q2); !errors.Is(err, ErrDimension) {
		t.Errorf("sum dim mismatch: %v", err)
	}
	if _, err := NewSum(q1, nil); err == nil {
		t.Error("nil term should error")
	}
}

func TestScale(t *testing.T) {
	q := mustLS(t, [][]float64{{1, 0}}, []float64{2})
	s, err := NewScale(0.5, q)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-12 {
		t.Fatalf("scaled eval = %v", v)
	}
	g, err := s.Grad([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.Equal(g, []float64{-2, 0}, 1e-12) {
		t.Fatalf("scaled grad = %v", g)
	}
	if _, err := NewScale(1, nil); err == nil {
		t.Error("nil cost should error")
	}
}

func TestSmoothnessStrongConvexity(t *testing.T) {
	// Design rows (1,0) and (0,2): Hessian = 2 diag(1, 4), so µ=8, γ=2.
	q := mustLS(t, [][]float64{{1, 0}, {0, 2}}, []float64{0, 0})
	mu, err := Smoothness(q)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := StrongConvexity(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-8) > 1e-9 || math.Abs(gamma-2) > 1e-9 {
		t.Fatalf("mu, gamma = %v, %v", mu, gamma)
	}
	if gamma > mu {
		t.Error("gamma must not exceed mu (Appendix C)")
	}
}

func TestNumericGradValidation(t *testing.T) {
	q := mustLS(t, [][]float64{{1, 0}}, []float64{1})
	if _, err := NumericGrad(q, []float64{1}, 1e-6); !errors.Is(err, ErrDimension) {
		t.Errorf("numeric grad dim: %v", err)
	}
	if _, err := NumericGrad(q, []float64{1, 2}, 0); err == nil {
		t.Error("zero step should error")
	}
}

// --- property tests ---

func TestPropLeastSquaresGradMatchesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 3+r.Intn(4), 1+r.Intn(3)
		rs := make([][]float64, rows)
		b := make([]float64, rows)
		for i := range rs {
			rs[i] = make([]float64, cols)
			for j := range rs[i] {
				rs[i][j] = r.NormFloat64()
			}
			b[i] = r.NormFloat64()
		}
		a, err := matrix.FromRows(rs)
		if err != nil {
			return false
		}
		q, err := NewLeastSquares(a, b)
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		g, err := q.Grad(x)
		if err != nil {
			return false
		}
		ng, err := NumericGrad(q, x, 1e-6)
		if err != nil {
			return false
		}
		return vecmath.Equal(g, ng, 1e-4)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropQuadraticConvexityInequality(t *testing.T) {
	// For convex Q: Q(y) >= Q(x) + <grad Q(x), y - x>.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		rows := make([][]float64, d+2)
		b := make([]float64, d+2)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = r.NormFloat64()
			}
			b[i] = r.NormFloat64()
		}
		a, err := matrix.FromRows(rows)
		if err != nil {
			return false
		}
		q, err := NewLeastSquares(a, b)
		if err != nil {
			return false
		}
		x := make([]float64, d)
		y := make([]float64, d)
		for i := range x {
			x[i] = r.NormFloat64() * 3
			y[i] = r.NormFloat64() * 3
		}
		qx, err := q.Eval(x)
		if err != nil {
			return false
		}
		qy, err := q.Eval(y)
		if err != nil {
			return false
		}
		g, err := q.Grad(x)
		if err != nil {
			return false
		}
		diff, err := vecmath.Sub(y, x)
		if err != nil {
			return false
		}
		inner, err := vecmath.Dot(g, diff)
		if err != nil {
			return false
		}
		return qy >= qx+inner-1e-8
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropMinimumIsStationary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		rows := make([][]float64, d+3)
		b := make([]float64, d+3)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = r.NormFloat64()
			}
			b[i] = r.NormFloat64()
		}
		a, err := matrix.FromRows(rows)
		if err != nil {
			return false
		}
		q, err := NewLeastSquares(a, b)
		if err != nil {
			return false
		}
		min, err := q.Minimum()
		if err != nil {
			return true // rank-deficient draw: vacuous
		}
		g, err := q.Grad(min)
		if err != nil {
			return false
		}
		return vecmath.Norm(g) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
