// Package costfunc models the agents' local cost functions Q_i : R^d -> R of
// the paper and the aggregates the theory quantifies over.
//
// The central abstractions are Function (evaluation only — the paper's
// impossibility and feasibility results in Section 3 never require
// differentiability) and Differentiable (evaluation plus gradient — what the
// distributed gradient-descent method of Section 4 consumes).
//
// Concrete costs provided:
//
//   - LeastSquares: Q(x) = sum_i (b_i - a_i x)^2, the distributed linear
//     regression cost of Section 5 / Appendix J.
//   - QuadraticForm: Q(x) = 1/2 x'Px + q'x + c, the generic strongly convex
//     quadratic used by tests and synthetic instances.
//   - Logistic: binary cross-entropy, for the learning experiments.
//   - Hinge: the SVM cost mentioned in Section 5 (subgradients).
//
// Sum and Scale combine costs; Smoothness and StrongConvexity compute the
// paper's µ and γ for quadratic costs from Hessian eigenvalue bounds.
package costfunc

import (
	"errors"
	"fmt"
	"math"

	"byzopt/internal/matrix"
	"byzopt/internal/vecmath"
)

// ErrDimension is returned (wrapped) when an argument does not match the
// cost function's domain dimension.
var ErrDimension = errors.New("costfunc: dimension mismatch")

// Function is a real-valued cost on R^d.
type Function interface {
	// Dim returns the domain dimension d.
	Dim() int
	// Eval returns Q(x).
	Eval(x []float64) (float64, error)
}

// Differentiable is a cost with a (sub)gradient oracle.
type Differentiable interface {
	Function
	// Grad returns the gradient (or a subgradient) of Q at x.
	Grad(x []float64) ([]float64, error)
}

// GradIntoer is an optional Differentiable extension: GradInto writes the
// gradient at x into dst (length Dim) instead of allocating it, producing
// bitwise-identical values to Grad. It is what lets the DGD engines run
// their steady-state round loop without heap allocations (see
// dgd.IntoAgent).
//
// Implementations may reuse internal scratch buffers between calls, so a
// single cost value must not serve concurrent GradInto calls; the engines
// only invoke it from their sequential collection path. Every concrete cost
// in this package implements GradIntoer.
type GradIntoer interface {
	Differentiable
	// GradInto writes the gradient (or a subgradient) of Q at x into dst.
	GradInto(dst, x []float64) error
}

// Minimizable is implemented by costs with a closed-form minimizer, such as
// full-rank least squares. The redundancy machinery uses it to compute the
// subset argmins x_S exactly.
type Minimizable interface {
	Function
	// Minimum returns one minimizer of the cost.
	Minimum() ([]float64, error)
}

// --- least squares ---

// LeastSquares is the regression cost Q(x) = ||b - A x||^2 over the rows of
// a design matrix. With a single row it is exactly one agent's cost
// Q_i(x) = (B_i - A_i x)^2 from Section 5.
type LeastSquares struct {
	a *matrix.Matrix
	b []float64
	// res is the residual scratch for GradInto, sized lazily to Rows; it is
	// what makes repeated gradient calls allocation-free.
	res []float64
}

var (
	_ GradIntoer  = (*LeastSquares)(nil)
	_ Minimizable = (*LeastSquares)(nil)
)

// NewLeastSquares builds the cost ||b - A x||^2.
func NewLeastSquares(a *matrix.Matrix, b []float64) (*LeastSquares, error) {
	if a == nil {
		return nil, errors.New("costfunc: nil design matrix")
	}
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("costfunc: %d rows vs %d responses: %w", a.Rows(), len(b), ErrDimension)
	}
	return &LeastSquares{a: a.Clone(), b: vecmath.Clone(b)}, nil
}

// NewSingleRowLeastSquares builds one agent's cost (b - a.x)^2.
func NewSingleRowLeastSquares(row []float64, b float64) (*LeastSquares, error) {
	m, err := matrix.FromRows([][]float64{row})
	if err != nil {
		return nil, fmt.Errorf("costfunc: %w", err)
	}
	return &LeastSquares{a: m, b: []float64{b}}, nil
}

// Dim returns the number of regression coefficients.
func (q *LeastSquares) Dim() int { return q.a.Cols() }

// Eval returns ||b - A x||^2.
func (q *LeastSquares) Eval(x []float64) (float64, error) {
	if len(x) != q.Dim() {
		return 0, fmt.Errorf("costfunc: eval at dim %d, want %d: %w", len(x), q.Dim(), ErrDimension)
	}
	res, err := matrix.Residual(q.a, x, q.b)
	if err != nil {
		return 0, err
	}
	return vecmath.NormSq(res), nil
}

// Grad returns -2 A' (b - A x). Unlike GradInto it allocates its own
// temporaries, so it stays safe for concurrent calls on a shared cost.
func (q *LeastSquares) Grad(x []float64) ([]float64, error) {
	g := make([]float64, q.Dim())
	if err := q.gradInto(g, x, make([]float64, q.a.Rows())); err != nil {
		return nil, err
	}
	return g, nil
}

// GradInto writes -2 A' (b - A x) into dst without allocating: the residual
// lands in an internal scratch buffer and the transposed product is computed
// in place, in the same accumulation order as the allocating route, so the
// values are bitwise identical.
func (q *LeastSquares) GradInto(dst, x []float64) error {
	rows := q.a.Rows()
	if cap(q.res) < rows {
		q.res = make([]float64, rows)
	}
	return q.gradInto(dst, x, q.res[:rows])
}

// gradInto is the shared gradient core; res is the rows-sized residual
// buffer the caller owns.
func (q *LeastSquares) gradInto(dst, x, res []float64) error {
	if len(x) != q.Dim() {
		return fmt.Errorf("costfunc: grad at dim %d, want %d: %w", len(x), q.Dim(), ErrDimension)
	}
	if len(dst) != q.Dim() {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), q.Dim(), ErrDimension)
	}
	if err := q.a.MulVecInto(res, x); err != nil {
		return err
	}
	for i := range res {
		res[i] = q.b[i] - res[i]
	}
	if err := q.a.MulTVecInto(dst, res); err != nil {
		return err
	}
	vecmath.ScaleInPlace(-2, dst)
	return nil
}

// Hessian returns the constant Hessian 2 A'A.
func (q *LeastSquares) Hessian() *matrix.Matrix { return q.a.Gram().Scale(2) }

// Minimum returns the least-squares minimizer. It requires A to have full
// column rank and at least Dim rows.
func (q *LeastSquares) Minimum() ([]float64, error) {
	x, err := matrix.LeastSquares(q.a, q.b)
	if err != nil {
		return nil, fmt.Errorf("costfunc: least squares minimum: %w", err)
	}
	return x, nil
}

// Design returns a copy of the design matrix A.
func (q *LeastSquares) Design() *matrix.Matrix { return q.a.Clone() }

// Response returns a copy of the response vector b.
func (q *LeastSquares) Response() []float64 { return vecmath.Clone(q.b) }

// --- quadratic form ---

// QuadraticForm is Q(x) = 1/2 x'Px + q'x + c with symmetric P.
type QuadraticForm struct {
	p *matrix.Matrix
	q []float64
	c float64
}

var _ Differentiable = (*QuadraticForm)(nil)

// NewQuadraticForm builds 1/2 x'Px + q'x + c. P must be square, symmetric,
// and match len(q).
func NewQuadraticForm(p *matrix.Matrix, q []float64, c float64) (*QuadraticForm, error) {
	if p == nil {
		return nil, errors.New("costfunc: nil quadratic matrix")
	}
	if p.Rows() != p.Cols() || p.Rows() != len(q) {
		return nil, fmt.Errorf("costfunc: quadratic %dx%d with linear dim %d: %w", p.Rows(), p.Cols(), len(q), ErrDimension)
	}
	if !p.IsSymmetric(1e-9 * (1 + p.FrobeniusNorm())) {
		return nil, errors.New("costfunc: quadratic matrix must be symmetric")
	}
	return &QuadraticForm{p: p.Clone(), q: vecmath.Clone(q), c: c}, nil
}

// Dim returns the domain dimension.
func (f *QuadraticForm) Dim() int { return len(f.q) }

// Eval returns 1/2 x'Px + q'x + c.
func (f *QuadraticForm) Eval(x []float64) (float64, error) {
	if len(x) != f.Dim() {
		return 0, fmt.Errorf("costfunc: eval at dim %d, want %d: %w", len(x), f.Dim(), ErrDimension)
	}
	px, err := f.p.MulVec(x)
	if err != nil {
		return 0, err
	}
	xpx, err := vecmath.Dot(x, px)
	if err != nil {
		return 0, err
	}
	qx, err := vecmath.Dot(f.q, x)
	if err != nil {
		return 0, err
	}
	return 0.5*xpx + qx + f.c, nil
}

// Grad returns Px + q.
func (f *QuadraticForm) Grad(x []float64) ([]float64, error) {
	g := make([]float64, f.Dim())
	if err := f.GradInto(g, x); err != nil {
		return nil, err
	}
	return g, nil
}

// GradInto writes Px + q into dst without allocating.
func (f *QuadraticForm) GradInto(dst, x []float64) error {
	if len(x) != f.Dim() {
		return fmt.Errorf("costfunc: grad at dim %d, want %d: %w", len(x), f.Dim(), ErrDimension)
	}
	if len(dst) != f.Dim() {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), f.Dim(), ErrDimension)
	}
	if err := f.p.MulVecInto(dst, x); err != nil {
		return err
	}
	return vecmath.AddInPlace(dst, f.q)
}

// Minimum solves Px = -q. It errors when P is singular.
func (f *QuadraticForm) Minimum() ([]float64, error) {
	x, err := f.p.Solve(vecmath.Neg(f.q))
	if err != nil {
		return nil, fmt.Errorf("costfunc: quadratic minimum: %w", err)
	}
	return x, nil
}

// Hessian returns a copy of P.
func (f *QuadraticForm) Hessian() *matrix.Matrix { return f.p.Clone() }

// --- logistic loss ---

// Logistic is the binary logistic regression cost
// Q(w) = (1/n) sum_i log(1 + exp(-y_i w.x_i)) + (reg/2)||w||^2,
// with labels y in {-1, +1}.
type Logistic struct {
	xs     [][]float64
	ys     []float64
	reg    float64
	weight float64 // 1/n normalization
}

var _ Differentiable = (*Logistic)(nil)

// NewLogistic builds a logistic cost over the given points. Labels must be
// -1 or +1; reg must be non-negative.
func NewLogistic(xs [][]float64, ys []float64, reg float64) (*Logistic, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("costfunc: %d points vs %d labels: %w", len(xs), len(ys), ErrDimension)
	}
	if reg < 0 {
		return nil, fmt.Errorf("costfunc: negative regularization %v", reg)
	}
	d := len(xs[0])
	cp := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("costfunc: point %d has dim %d, want %d: %w", i, len(x), d, ErrDimension)
		}
		if ys[i] != 1 && ys[i] != -1 {
			return nil, fmt.Errorf("costfunc: label %d is %v, want +-1", i, ys[i])
		}
		cp[i] = vecmath.Clone(x)
	}
	return &Logistic{xs: cp, ys: vecmath.Clone(ys), reg: reg, weight: 1 / float64(len(xs))}, nil
}

// Dim returns the feature dimension.
func (l *Logistic) Dim() int { return len(l.xs[0]) }

// Eval returns the regularized mean logistic loss.
func (l *Logistic) Eval(w []float64) (float64, error) {
	if len(w) != l.Dim() {
		return 0, fmt.Errorf("costfunc: eval at dim %d, want %d: %w", len(w), l.Dim(), ErrDimension)
	}
	var s float64
	for i, x := range l.xs {
		wx, err := vecmath.Dot(w, x)
		if err != nil {
			return 0, err
		}
		s += log1pExp(-l.ys[i] * wx)
	}
	return l.weight*s + 0.5*l.reg*vecmath.NormSq(w), nil
}

// Grad returns the gradient of the regularized mean logistic loss.
func (l *Logistic) Grad(w []float64) ([]float64, error) {
	g := make([]float64, l.Dim())
	if err := l.GradInto(g, w); err != nil {
		return nil, err
	}
	return g, nil
}

// GradInto writes the gradient of the regularized mean logistic loss into
// dst without allocating.
func (l *Logistic) GradInto(dst, w []float64) error {
	if len(w) != l.Dim() {
		return fmt.Errorf("costfunc: grad at dim %d, want %d: %w", len(w), l.Dim(), ErrDimension)
	}
	if len(dst) != l.Dim() {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), l.Dim(), ErrDimension)
	}
	for i := range dst {
		dst[i] = l.reg * w[i]
	}
	for i, x := range l.xs {
		wx, err := vecmath.Dot(w, x)
		if err != nil {
			return err
		}
		// d/dw log(1+exp(-y wx)) = -y sigmoid(-y wx) x
		coeff := -l.ys[i] * sigmoid(-l.ys[i]*wx) * l.weight
		if err := vecmath.AxpyInPlace(dst, coeff, x); err != nil {
			return err
		}
	}
	return nil
}

// --- hinge loss (SVM) ---

// Hinge is the soft-margin SVM cost
// Q(w) = (1/n) sum_i max(0, 1 - y_i w.x_i) + (reg/2)||w||^2.
// Grad returns a subgradient (the hinge is non-smooth at the margin).
type Hinge struct {
	xs     [][]float64
	ys     []float64
	reg    float64
	weight float64
}

var _ Differentiable = (*Hinge)(nil)

// NewHinge builds an SVM hinge cost over the given points. Labels must be
// -1 or +1; reg must be non-negative.
func NewHinge(xs [][]float64, ys []float64, reg float64) (*Hinge, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("costfunc: %d points vs %d labels: %w", len(xs), len(ys), ErrDimension)
	}
	if reg < 0 {
		return nil, fmt.Errorf("costfunc: negative regularization %v", reg)
	}
	d := len(xs[0])
	cp := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("costfunc: point %d has dim %d, want %d: %w", i, len(x), d, ErrDimension)
		}
		if ys[i] != 1 && ys[i] != -1 {
			return nil, fmt.Errorf("costfunc: label %d is %v, want +-1", i, ys[i])
		}
		cp[i] = vecmath.Clone(x)
	}
	return &Hinge{xs: cp, ys: vecmath.Clone(ys), reg: reg, weight: 1 / float64(len(xs))}, nil
}

// Dim returns the feature dimension.
func (h *Hinge) Dim() int { return len(h.xs[0]) }

// Eval returns the regularized mean hinge loss.
func (h *Hinge) Eval(w []float64) (float64, error) {
	if len(w) != h.Dim() {
		return 0, fmt.Errorf("costfunc: eval at dim %d, want %d: %w", len(w), h.Dim(), ErrDimension)
	}
	var s float64
	for i, x := range h.xs {
		wx, err := vecmath.Dot(w, x)
		if err != nil {
			return 0, err
		}
		if m := 1 - h.ys[i]*wx; m > 0 {
			s += m
		}
	}
	return h.weight*s + 0.5*h.reg*vecmath.NormSq(w), nil
}

// Grad returns a subgradient of the regularized mean hinge loss.
func (h *Hinge) Grad(w []float64) ([]float64, error) {
	g := make([]float64, h.Dim())
	if err := h.GradInto(g, w); err != nil {
		return nil, err
	}
	return g, nil
}

// GradInto writes a subgradient of the regularized mean hinge loss into dst
// without allocating.
func (h *Hinge) GradInto(dst, w []float64) error {
	if len(w) != h.Dim() {
		return fmt.Errorf("costfunc: grad at dim %d, want %d: %w", len(w), h.Dim(), ErrDimension)
	}
	if len(dst) != h.Dim() {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), h.Dim(), ErrDimension)
	}
	for i := range dst {
		dst[i] = h.reg * w[i]
	}
	for i, x := range h.xs {
		wx, err := vecmath.Dot(w, x)
		if err != nil {
			return err
		}
		if 1-h.ys[i]*wx > 0 {
			if err := vecmath.AxpyInPlace(dst, -h.ys[i]*h.weight, x); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- combinators ---

// Sum is the aggregate cost sum_i Q_i(x) over a set of agents, the object
// the paper's definitions quantify over.
type Sum struct {
	terms []Differentiable
	dim   int
	// buf is the per-term gradient scratch for GradInto, sized lazily.
	buf []float64
}

var _ GradIntoer = (*Sum)(nil)

// NewSum aggregates the given costs; they must share a dimension.
func NewSum(terms ...Differentiable) (*Sum, error) {
	if len(terms) == 0 {
		return nil, errors.New("costfunc: empty sum")
	}
	d := terms[0].Dim()
	for i, f := range terms {
		if f == nil {
			return nil, fmt.Errorf("costfunc: nil term %d", i)
		}
		if f.Dim() != d {
			return nil, fmt.Errorf("costfunc: term %d has dim %d, want %d: %w", i, f.Dim(), d, ErrDimension)
		}
	}
	cp := make([]Differentiable, len(terms))
	copy(cp, terms)
	return &Sum{terms: cp, dim: d}, nil
}

// Dim returns the shared domain dimension.
func (s *Sum) Dim() int { return s.dim }

// Len returns the number of terms.
func (s *Sum) Len() int { return len(s.terms) }

// Eval returns sum_i Q_i(x).
func (s *Sum) Eval(x []float64) (float64, error) {
	var total float64
	for i, f := range s.terms {
		v, err := f.Eval(x)
		if err != nil {
			return 0, fmt.Errorf("sum term %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}

// Grad returns sum_i grad Q_i(x). Unlike GradInto it touches no receiver
// scratch (each term's own Grad allocates), so it stays safe for concurrent
// calls on a shared cost.
func (s *Sum) Grad(x []float64) ([]float64, error) {
	g := vecmath.Zeros(s.dim)
	for i, f := range s.terms {
		gi, err := f.Grad(x)
		if err != nil {
			return nil, fmt.Errorf("sum term %d: %w", i, err)
		}
		if err := vecmath.AddInPlace(g, gi); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// GradInto writes sum_i grad Q_i(x) into dst, routing each term through its
// own GradInto when available (an internal scratch buffer receives the term
// gradients) and falling back to Grad otherwise. Term order and accumulation
// order match Grad's, so the result is bitwise identical.
func (s *Sum) GradInto(dst, x []float64) error {
	if len(dst) != s.dim {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), s.dim, ErrDimension)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, f := range s.terms {
		if ig, ok := f.(GradIntoer); ok {
			if cap(s.buf) < s.dim {
				s.buf = make([]float64, s.dim)
			}
			buf := s.buf[:s.dim]
			if err := ig.GradInto(buf, x); err != nil {
				return fmt.Errorf("sum term %d: %w", i, err)
			}
			if err := vecmath.AddInPlace(dst, buf); err != nil {
				return err
			}
			continue
		}
		gi, err := f.Grad(x)
		if err != nil {
			return fmt.Errorf("sum term %d: %w", i, err)
		}
		if err := vecmath.AddInPlace(dst, gi); err != nil {
			return err
		}
	}
	return nil
}

// Scale wraps a cost multiplied by a positive constant (e.g. the 1/|H|
// average of Assumption 3).
type Scale struct {
	f     Differentiable
	alpha float64
}

var _ GradIntoer = (*Scale)(nil)

// NewScale builds alpha * f.
func NewScale(alpha float64, f Differentiable) (*Scale, error) {
	if f == nil {
		return nil, errors.New("costfunc: nil scaled cost")
	}
	return &Scale{f: f, alpha: alpha}, nil
}

// Dim returns the wrapped dimension.
func (s *Scale) Dim() int { return s.f.Dim() }

// Eval returns alpha * f(x).
func (s *Scale) Eval(x []float64) (float64, error) {
	v, err := s.f.Eval(x)
	if err != nil {
		return 0, err
	}
	return s.alpha * v, nil
}

// Grad returns alpha * grad f(x).
func (s *Scale) Grad(x []float64) ([]float64, error) {
	g, err := s.f.Grad(x)
	if err != nil {
		return nil, err
	}
	vecmath.ScaleInPlace(s.alpha, g)
	return g, nil
}

// GradInto writes alpha * grad f(x) into dst, routing through the wrapped
// cost's GradInto when available.
func (s *Scale) GradInto(dst, x []float64) error {
	if ig, ok := s.f.(GradIntoer); ok {
		if err := ig.GradInto(dst, x); err != nil {
			return err
		}
		vecmath.ScaleInPlace(s.alpha, dst)
		return nil
	}
	g, err := s.f.Grad(x)
	if err != nil {
		return err
	}
	if len(g) != len(dst) {
		return fmt.Errorf("costfunc: grad into dim %d, want %d: %w", len(dst), len(g), ErrDimension)
	}
	copy(dst, g)
	vecmath.ScaleInPlace(s.alpha, dst)
	return nil
}

// --- analysis helpers ---

// Hessianer is implemented by costs with a constant Hessian.
type Hessianer interface {
	Hessian() *matrix.Matrix
}

// Smoothness returns the Lipschitz-smoothness coefficient µ of a quadratic
// cost: the largest eigenvalue of its Hessian (Assumption 2).
func Smoothness(f Hessianer) (float64, error) {
	_, hi, err := matrix.EigenBounds(f.Hessian())
	if err != nil {
		return 0, fmt.Errorf("costfunc: smoothness: %w", err)
	}
	return hi, nil
}

// StrongConvexity returns the strong-convexity coefficient γ of a quadratic
// cost: the smallest eigenvalue of its Hessian (Assumption 3).
func StrongConvexity(f Hessianer) (float64, error) {
	lo, _, err := matrix.EigenBounds(f.Hessian())
	if err != nil {
		return 0, fmt.Errorf("costfunc: strong convexity: %w", err)
	}
	return lo, nil
}

// NumericGrad approximates the gradient of f at x with central differences
// of width h. Used by tests to validate analytic gradients.
func NumericGrad(f Function, x []float64, h float64) ([]float64, error) {
	if len(x) != f.Dim() {
		return nil, fmt.Errorf("costfunc: numeric grad at dim %d, want %d: %w", len(x), f.Dim(), ErrDimension)
	}
	if h <= 0 {
		return nil, fmt.Errorf("costfunc: step %v must be positive", h)
	}
	g := make([]float64, len(x))
	xp := vecmath.Clone(x)
	for i := range x {
		xp[i] = x[i] + h
		hiV, err := f.Eval(xp)
		if err != nil {
			return nil, err
		}
		xp[i] = x[i] - h
		loV, err := f.Eval(xp)
		if err != nil {
			return nil, err
		}
		xp[i] = x[i]
		g[i] = (hiV - loV) / (2 * h)
	}
	return g, nil
}

// sigmoid is the numerically stable logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// log1pExp computes log(1 + exp(z)) without overflow.
func log1pExp(z float64) float64 {
	if z > 35 {
		return z // exp(z) dominates; log(1+e^z) ~= z
	}
	if z < -35 {
		return math.Exp(z) // log(1+eps) ~= eps
	}
	return math.Log1p(math.Exp(z))
}
