package costfunc

// Parity and allocation tests for the GradInto oracles: every concrete cost
// must write bitwise-identical values to what Grad returns, and repeated
// calls must not touch the allocator.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"byzopt/internal/matrix"
)

// gradIntoCosts builds one instance of every concrete cost over dimension d.
func gradIntoCosts(t *testing.T, r *rand.Rand, d int) map[string]GradIntoer {
	t.Helper()
	rows := 2 + r.Intn(4)
	data := make([]float64, rows*d)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	a, err := matrix.New(rows, d, data)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	ls, err := NewLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gram := a.Gram()
	q := make([]float64, d)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	qf, err := NewQuadraticForm(gram, q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([][]float64, 6)
	ys := make([]float64, 6)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
		ys[i] = float64(1 - 2*(i%2))
	}
	lg, err := NewLogistic(pts, ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := NewHinge(pts, ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := NewSum(ls, qf, lg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScale(0.37, sum)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]GradIntoer{
		"leastsquares": ls,
		"quadratic":    qf,
		"logistic":     lg,
		"hinge":        hg,
		"sum":          sum,
		"scale":        sc,
	}
}

// TestGradIntoMatchesGrad fuzzes every cost: GradInto must be bitwise
// identical to Grad at random points, through repeated scratch-reusing
// calls.
func TestGradIntoMatchesGrad(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for _, d := range []int{1, 3, 9, 24} {
		costs := gradIntoCosts(t, r, d)
		for name, cost := range costs {
			dst := make([]float64, d)
			for trial := 0; trial < 20; trial++ {
				x := make([]float64, d)
				for i := range x {
					x[i] = r.NormFloat64() * 2
				}
				want, err := cost.Grad(x)
				if err != nil {
					t.Fatalf("%s d=%d: Grad: %v", name, d, err)
				}
				if err := cost.GradInto(dst, x); err != nil {
					t.Fatalf("%s d=%d: GradInto: %v", name, d, err)
				}
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(dst[i]) {
						t.Fatalf("%s d=%d trial %d: coord %d differs: Grad %v GradInto %v",
							name, d, trial, i, want[i], dst[i])
					}
				}
			}
		}
	}
}

// TestGradIntoDimensionChecks pins the error contract: wrong x or dst
// dimensions are rejected with ErrDimension and dst is left untouched on
// the x-dimension error path.
func TestGradIntoDimensionChecks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	costs := gradIntoCosts(t, r, 4)
	for name, cost := range costs {
		if err := cost.GradInto(make([]float64, 4), make([]float64, 5)); !errors.Is(err, ErrDimension) {
			t.Errorf("%s: wrong x dim got %v, want ErrDimension", name, err)
		}
		if err := cost.GradInto(make([]float64, 3), make([]float64, 4)); !errors.Is(err, ErrDimension) {
			t.Errorf("%s: wrong dst dim got %v, want ErrDimension", name, err)
		}
	}
}

// TestGradIntoAllocs proves the oracle contract the engine's arena relies
// on: after the first (lazily sizing) call, GradInto allocates nothing.
func TestGradIntoAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	costs := gradIntoCosts(t, r, 16)
	x := make([]float64, 16)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for name, cost := range costs {
		dst := make([]float64, 16)
		if err := cost.GradInto(dst, x); err != nil {
			t.Fatalf("%s warmup: %v", name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := cost.GradInto(dst, x); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestSumGradIntoMixedTerms checks the fallback branch: a Sum holding a
// term without GradInto still matches Grad bitwise.
func TestSumGradIntoMixedTerms(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	costs := gradIntoCosts(t, r, 6)
	plain := plainDifferentiable{inner: costs["quadratic"]}
	sum, err := NewSum(costs["leastsquares"], plain, costs["hinge"])
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want, err := sum.Grad(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 6)
	if err := sum.GradInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(dst[i]) {
			t.Fatalf("mixed sum coord %d differs: %v vs %v", i, want[i], dst[i])
		}
	}
}

// TestGradStaysConcurrencySafe pins the long-standing Grad contract the
// scratch-backed GradInto must not erode: concurrent Grad calls on one
// shared cost value are safe (the engine's Workers > 1 path relies on it).
// Meaningful under -race.
func TestGradStaysConcurrencySafe(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	costs := gradIntoCosts(t, r, 8)
	x := make([]float64, 8)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for name, cost := range costs {
		want, err := cost.Grad(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		done := make(chan []float64, 8)
		for w := 0; w < 8; w++ {
			go func() {
				g, err := cost.Grad(x)
				if err != nil {
					t.Error(err)
				}
				done <- g
			}()
		}
		for w := 0; w < 8; w++ {
			g := <-done
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(g[i]) {
					t.Fatalf("%s: concurrent Grad corrupted coord %d", name, i)
				}
			}
		}
	}
}

// plainDifferentiable hides a cost's GradInto face.
type plainDifferentiable struct{ inner Differentiable }

func (p plainDifferentiable) Dim() int { return p.inner.Dim() }

func (p plainDifferentiable) Eval(x []float64) (float64, error) { return p.inner.Eval(x) }

func (p plainDifferentiable) Grad(x []float64) ([]float64, error) { return p.inner.Grad(x) }
