package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, r, c int, data []float64) *Matrix {
	t.Helper()
	m, err := New(r, c, data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 2, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("New short data: %v", err)
	}
	if _, err := New(-1, 2, nil); err == nil {
		t.Error("New negative rows should error")
	}
	if _, err := Zero(-1, 2); err == nil {
		t.Error("Zero negative rows should error")
	}
}

func TestNewCopiesData(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := mustNew(t, 2, 2, data)
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("New aliased caller data")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows got %v", m)
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should error")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("FromRows empty row should error")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrShape) {
		t.Errorf("FromRows ragged: %v", err)
	}
}

func TestFromColumn(t *testing.T) {
	m, err := FromColumn([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 1 || m.At(1, 0) != 2 {
		t.Fatalf("FromColumn got %v", m)
	}
	if _, err := FromColumn(nil); err == nil {
		t.Error("FromColumn(nil) should error")
	}
}

func TestRowColAccessors(t *testing.T) {
	m := mustNew(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 99
	if m.At(1, 0) != 4 {
		t.Error("Row aliased internal data")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col = %v", col)
	}
}

func TestSelectRows(t *testing.T) {
	m := mustNew(t, 3, 2, []float64{1, 2, 3, 4, 5, 6})
	sub, err := m.SelectRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := mustNew(t, 2, 2, []float64{5, 6, 1, 2})
	if !sub.Equal(want, 0) {
		t.Fatalf("SelectRows = %v", sub)
	}
	if _, err := m.SelectRows(nil); err == nil {
		t.Error("SelectRows empty should error")
	}
	if _, err := m.SelectRows([]int{3}); err == nil {
		t.Error("SelectRows out of range should error")
	}
}

func TestTranspose(t *testing.T) {
	m := mustNew(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 || mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("T = %v", mt)
	}
	if !mt.T().Equal(m, 0) {
		t.Error("double transpose should be identity")
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{1, 2, 3, 4})
	b := mustNew(t, 2, 2, []float64{4, 3, 2, 1})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(mustNew(t, 2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(mustNew(t, 2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Fatalf("Sub = %v", diff)
	}
	if got := a.Scale(2); !got.Equal(mustNew(t, 2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	c := mustNew(t, 1, 2, []float64{1, 2})
	if _, err := a.Add(c); !errors.Is(err, ErrShape) {
		t.Errorf("Add shape: %v", err)
	}
	if _, err := a.Sub(c); !errors.Is(err, ErrShape) {
		t.Errorf("Sub shape: %v", err)
	}
}

func TestMul(t *testing.T) {
	a := mustNew(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := mustNew(t, 3, 2, []float64{7, 8, 9, 10, 11, 12})
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustNew(t, 2, 2, []float64{58, 64, 139, 154})
	if !ab.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v", ab)
	}
	if _, err := a.Mul(a); !errors.Is(err, ErrShape) {
		t.Errorf("Mul shape: %v", err)
	}
}

func TestMulVec(t *testing.T) {
	a := mustNew(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	got, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec shape: %v", err)
	}
}

// TestMulVecIntoBlockedBitwise pins the four-row register blocking of
// MulVecInto against the per-row dot product, bitwise, across row-count
// remainders (1..9 exercise the blocked body and its tail) and column
// lengths through the dot kernel's own unroll remainders.
func TestMulVecIntoBlockedBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, rows := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 32} {
		for _, cols := range []int{1, 3, 4, 17, 100} {
			data := make([]float64, rows*cols)
			for i := range data {
				data[i] = r.NormFloat64() * 10
			}
			v := make([]float64, cols)
			for i := range v {
				v[i] = r.NormFloat64()
			}
			m := mustNew(t, rows, cols, data)
			dst := make([]float64, rows)
			if err := m.MulVecInto(dst, v); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rows; i++ {
				want := dotRow(data[i*cols:(i+1)*cols], v)
				if math.Float64bits(dst[i]) != math.Float64bits(want) {
					t.Fatalf("rows=%d cols=%d: MulVecInto[%d] = %v, dotRow = %v", rows, cols, i, dst[i], want)
				}
			}
		}
	}
}

func TestGram(t *testing.T) {
	a := mustNew(t, 3, 2, []float64{1, 0, 0, 1, 1, 1})
	g := a.Gram()
	want := mustNew(t, 2, 2, []float64{2, 1, 1, 2})
	if !g.Equal(want, 1e-12) {
		t.Fatalf("Gram = %v", g)
	}
	if !g.IsSymmetric(0) {
		t.Error("Gram should be symmetric")
	}
}

func TestSolve(t *testing.T) {
	a := mustNew(t, 3, 3, []float64{2, 1, 1, 1, 3, 2, 1, 0, 0})
	// x = (1, 2, 3): b = (2+2+3, 1+6+6, 1) = (7, 13, 1)
	x, err := a.Solve([]float64{7, 13, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("Solve = %v", x)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{1, 2, 2, 4})
	if _, err := a.Solve([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular solve: %v", err)
	}
	z := mustNew(t, 2, 2, []float64{0, 0, 0, 0})
	if _, err := z.Solve([]float64{0, 0}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero solve: %v", err)
	}
	r := mustNew(t, 2, 3, make([]float64, 6))
	if _, err := r.Solve([]float64{0, 0}); !errors.Is(err, ErrShape) {
		t.Errorf("non-square solve: %v", err)
	}
	sq := mustNew(t, 2, 2, []float64{1, 0, 0, 1})
	if _, err := sq.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs shape: %v", err)
	}
}

func TestSolveDoesNotMutateReceiver(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{4, 1, 1, 3})
	before := a.Clone()
	if _, err := a.Solve([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(before, 0) {
		t.Error("Solve mutated the receiver")
	}
}

func TestInverse(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{4, 7, 2, 6})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	id, err := Identity(2)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(id, 1e-10) {
		t.Fatalf("A * A^-1 = %v", prod)
	}
	if _, err := mustNew(t, 1, 2, []float64{1, 2}).Inverse(); !errors.Is(err, ErrShape) {
		t.Errorf("inverse non-square: %v", err)
	}
}

func TestDet(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{3, 8, 4, 6})
	d, err := a.Det()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-14)) > 1e-10 {
		t.Fatalf("Det = %v", d)
	}
	sing := mustNew(t, 2, 2, []float64{1, 2, 2, 4})
	d, err = sing.Det()
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Det singular = %v", d)
	}
	if _, err := mustNew(t, 1, 2, []float64{1, 2}).Det(); !errors.Is(err, ErrShape) {
		t.Errorf("det non-square: %v", err)
	}
}

func TestRank(t *testing.T) {
	full := mustNew(t, 3, 2, []float64{1, 0, 0, 1, 1, 1})
	if r := full.Rank(); r != 2 {
		t.Errorf("full rank = %d", r)
	}
	deficient := mustNew(t, 3, 2, []float64{1, 2, 2, 4, 3, 6})
	if r := deficient.Rank(); r != 1 {
		t.Errorf("deficient rank = %d", r)
	}
	zero := mustNew(t, 2, 2, make([]float64, 4))
	if r := zero.Rank(); r != 0 {
		t.Errorf("zero rank = %d", r)
	}
}

func TestCholesky(t *testing.T) {
	a := mustNew(t, 2, 2, []float64{4, 2, 2, 3})
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := l.Mul(l.T())
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(a, 1e-10) {
		t.Fatalf("L Lt = %v", prod)
	}
	notSPD := mustNew(t, 2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := notSPD.Cholesky(); !errors.Is(err, ErrNotSPD) {
		t.Errorf("cholesky not SPD: %v", err)
	}
	asym := mustNew(t, 2, 2, []float64{1, 2, 0, 1})
	if _, err := asym.Cholesky(); !errors.Is(err, ErrNotSPD) {
		t.Errorf("cholesky asymmetric: %v", err)
	}
}

func TestSolveCholesky(t *testing.T) {
	a := mustNew(t, 3, 3, []float64{4, 1, 0, 1, 5, 2, 0, 2, 6})
	want := []float64{1, -1, 2}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := a.SolveCholesky(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("SolveCholesky = %v", x)
		}
	}
	if _, err := a.SolveCholesky([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("cholesky rhs shape: %v", err)
	}
}

func TestString(t *testing.T) {
	m := mustNew(t, 2, 2, []float64{1, 2, 3, 4})
	got := m.String()
	want := "[1 2]\n[3 4]"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// --- least squares ---

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system: recovery must be exact.
	a := mustNew(t, 4, 2, []float64{1, 0, 0, 1, 1, 1, 1, -1})
	want := []float64{2, -3}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("LeastSquares = %v", x)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The optimality condition: Aᵀ(b - Ax) = 0.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 6+r.Intn(5), 2+r.Intn(3)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		a := mustNew(t, rows, cols, data)
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		atr, err := a.T().MulVec(res)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("trial %d: At r[%d] = %v, not orthogonal", trial, i, v)
			}
		}
	}
}

func TestLeastSquaresMatchesNormalEquations(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 8, 3
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		a := mustNew(t, rows, cols, data)
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := NormalEquations(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				t.Fatalf("trial %d: QR %v vs normal equations %v", trial, x1, x2)
			}
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := mustNew(t, 3, 2, []float64{1, 2, 2, 4, 3, 6}) // rank 1
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("rank-deficient lstsq: %v", err)
	}
	good := mustNew(t, 3, 2, []float64{1, 0, 0, 1, 1, 1})
	if _, err := LeastSquares(good, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("lstsq rhs shape: %v", err)
	}
	under := mustNew(t, 1, 2, []float64{1, 2})
	if _, err := LeastSquares(under, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("underdetermined: %v", err)
	}
	zero := mustNew(t, 3, 2, make([]float64, 6))
	if _, err := LeastSquares(zero, []float64{0, 0, 0}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero design: %v", err)
	}
}

// --- eigenvalues ---

func TestSymmetricEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := mustNew(t, 2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Verify A v = lambda v for each column.
	for j := 0; j < 2; j++ {
		v := vecs.Col(j)
		av, err := m.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-9 {
				t.Fatalf("eigenpair %d: Av = %v, lambda v = %v", j, av, vals[j])
			}
		}
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := mustNew(t, 3, 3, []float64{5, 0, 0, 0, -2, 0, 0, 0, 1})
	vals, _, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("diag eigen = %v", vals)
		}
	}
}

func TestSymmetricEigenErrors(t *testing.T) {
	if _, _, err := SymmetricEigen(mustNew(t, 2, 3, make([]float64, 6))); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: %v", err)
	}
	asym := mustNew(t, 2, 2, []float64{1, 5, 0, 1})
	if _, _, err := SymmetricEigen(asym); err == nil {
		t.Error("asymmetric should error")
	}
}

func TestEigenBounds(t *testing.T) {
	m := mustNew(t, 2, 2, []float64{2, 1, 1, 2})
	lo, hi, err := EigenBounds(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Fatalf("EigenBounds = %v %v", lo, hi)
	}
}

// --- property tests ---

func randSymmetric(r *rand.Rand, n int) *Matrix {
	data := make([]float64, n*n)
	m := &Matrix{rows: n, cols: n, data: data}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64() * 3
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestPropEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := randSymmetric(r, n)
		vals, vecs, err := SymmetricEigen(m)
		if err != nil {
			return false
		}
		// Reconstruct V diag(vals) Vt and compare to m.
		d, err := Zero(n, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		vd, err := vecs.Mul(d)
		if err != nil {
			return false
		}
		rec, err := vd.Mul(vecs.T())
		if err != nil {
			return false
		}
		return rec.Equal(m, 1e-7*(1+m.FrobeniusNorm()))
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropEigenvectorsOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := randSymmetric(r, n)
		_, vecs, err := SymmetricEigen(m)
		if err != nil {
			return false
		}
		gram := vecs.Gram()
		id, err := Identity(n)
		if err != nil {
			return false
		}
		return gram.Equal(id, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		// Diagonally dominant matrices are comfortably non-singular.
		m, err := Zero(n, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)+5)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64() * 10
		}
		b, err := m.MulVec(want)
		if err != nil {
			return false
		}
		x, err := m.Solve(b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropCholeskyOnGram(t *testing.T) {
	// Gram matrices of full-column-rank designs are SPD, so Cholesky must
	// succeed and reconstruct.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 5+r.Intn(4), 2+r.Intn(3)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		a := &Matrix{rows: rows, cols: cols, data: data}
		g := a.Gram()
		// Regularize slightly to keep strictly positive definite.
		for i := 0; i < cols; i++ {
			g.Set(i, i, g.At(i, i)+1e-6)
		}
		l, err := g.Cholesky()
		if err != nil {
			return false
		}
		rec, err := l.Mul(l.T())
		if err != nil {
			return false
		}
		return rec.Equal(g, 1e-8*(1+g.FrobeniusNorm()))
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
