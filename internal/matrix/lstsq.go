package matrix

import (
	"fmt"
	"math"
)

// LeastSquares solves min_x ||A x - b||² for a full-column-rank A using
// Householder QR, which is numerically preferable to forming the normal
// equations. It returns ErrSingular (wrapped) when A is column rank
// deficient.
//
// This is the solver behind every subset minimizer x_S = argmin Q_S(x) in
// the Appendix-J regression instance and in the redundancy measurement.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.rows, a.cols
	if len(b) != m {
		return nil, fmt.Errorf("matrix: lstsq rhs length %d, want %d: %w", len(b), m, ErrShape)
	}
	if m < n {
		return nil, fmt.Errorf("matrix: lstsq underdetermined %dx%d: %w", m, n, ErrShape)
	}
	r := a.Clone()
	qtb := make([]float64, m)
	copy(qtb, b)

	scale := r.FrobeniusNorm()
	if scale == 0 {
		return nil, fmt.Errorf("matrix: zero design matrix: %w", ErrSingular)
	}
	tol := scale * 1e-13

	// Householder triangularization, applying each reflector to qtb as we go.
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Column norm below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm < tol {
			return nil, fmt.Errorf("matrix: column %d rank deficient: %w", k, ErrSingular)
		}
		alpha := -math.Copysign(norm, r.At(k, k))
		// Reflector v = x - alpha*e_k, normalized implicitly via vTv.
		var vtv float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vtv += v[i] * v[i]
		}
		if vtv == 0 {
			continue // column already triangular
		}
		// Apply H = I - 2 v vᵀ / vᵀv to the remaining columns of R.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vtv
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// Apply H to the right-hand side.
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i] * qtb[i]
		}
		f := 2 * dot / vtv
		for i := k; i < m; i++ {
			qtb[i] -= f * v[i]
		}
	}

	// Back substitution on the n x n upper-triangular block.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		diag := r.At(i, i)
		if math.Abs(diag) < tol {
			return nil, fmt.Errorf("matrix: zero diagonal %d in R: %w", i, ErrSingular)
		}
		x[i] = s / diag
	}
	return x, nil
}

// NormalEquations solves min_x ||A x - b||² by forming AᵀA x = Aᵀb and using
// Cholesky. Faster but less robust than LeastSquares; exposed for the
// ablation comparing the two paths and as a cross-check in tests.
func NormalEquations(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("matrix: normal equations rhs length %d, want %d: %w", len(b), a.rows, ErrShape)
	}
	gram := a.Gram()
	atb, err := a.T().MulVec(b)
	if err != nil {
		return nil, err
	}
	x, err := gram.SolveCholesky(atb)
	if err != nil {
		return nil, fmt.Errorf("normal equations: %w", err)
	}
	return x, nil
}

// Residual returns b - A x, the least-squares residual vector.
func Residual(a *Matrix, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	if len(b) != len(ax) {
		return nil, fmt.Errorf("matrix: residual rhs length %d, want %d: %w", len(b), len(ax), ErrShape)
	}
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i] - ax[i]
	}
	return out, nil
}
