// Package matrix implements the dense linear algebra the reproduction needs
// and the Go standard library does not provide: matrix arithmetic, linear
// solvers (Gaussian elimination with partial pivoting, Cholesky), Householder
// QR least squares, and a cyclic Jacobi eigensolver for symmetric matrices.
//
// The eigensolver is what lets us compute the paper's smoothness coefficient
// µ (largest eigenvalue of the per-agent Hessian) and strong-convexity
// coefficient γ (smallest eigenvalue of the subset-aggregate Hessian), and
// the QR solver is what computes the subset minimizers x_S = argmin ||B_S -
// A_S x||² that the redundancy measurement enumerates.
//
// Matrices are small in this domain (d is the optimization dimension, a few
// dozen at most in the paper's experiments), so the implementations favor
// clarity and numerical robustness over blocking or parallelism.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (wrapped) when operand shapes are incompatible.
var ErrShape = errors.New("matrix: shape mismatch")

// ErrSingular is returned (wrapped) when a solver meets a singular or
// numerically rank-deficient system.
var ErrSingular = errors.New("matrix: singular matrix")

// ErrNotSPD is returned (wrapped) when a Cholesky factorization is attempted
// on a matrix that is not symmetric positive definite.
var ErrNotSPD = errors.New("matrix: matrix not symmetric positive definite")

// Matrix is a dense, row-major matrix of float64.
// The zero value is an empty 0x0 matrix; construct with New, Zero, Identity,
// or FromRows.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New builds an r x c matrix backed by the given data (row-major). The data
// is copied so the matrix never aliases caller memory.
func New(r, c int, data []float64) (*Matrix, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("matrix: negative dimensions %dx%d", r, c)
	}
	if len(data) != r*c {
		return nil, fmt.Errorf("matrix: %dx%d needs %d entries, got %d: %w", r, c, r*c, len(data), ErrShape)
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Matrix{rows: r, cols: c, data: d}, nil
}

// Zero builds an r x c matrix of zeros.
func Zero(r, c int) (*Matrix, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("matrix: negative dimensions %dx%d", r, c)
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}, nil
}

// Identity builds the n x n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := Zero(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// FromRows builds a matrix from row slices, which must be non-empty and of
// equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("matrix: FromRows with no rows")
	}
	c := len(rows[0])
	if c == 0 {
		return nil, errors.New("matrix: FromRows with empty rows")
	}
	data := make([]float64, 0, len(rows)*c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d: %w", i, len(row), c, ErrShape)
		}
		data = append(data, row...)
	}
	return &Matrix{rows: len(rows), cols: c, data: data}, nil
}

// FromColumn builds an n x 1 column matrix from a vector.
func FromColumn(v []float64) (*Matrix, error) {
	if len(v) == 0 {
		return nil, errors.New("matrix: FromColumn with empty vector")
	}
	d := make([]float64, len(v))
	copy(d, v)
	return &Matrix{rows: len(v), cols: 1, data: d}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// SelectRows returns the submatrix formed by the given row indices, in the
// order provided. It is how the redundancy machinery builds A_S from S.
func (m *Matrix) SelectRows(idx []int) (*Matrix, error) {
	if len(idx) == 0 {
		return nil, errors.New("matrix: SelectRows with no indices")
	}
	out := make([]float64, 0, len(idx)*m.cols)
	for _, i := range idx {
		if i < 0 || i >= m.rows {
			return nil, fmt.Errorf("matrix: row index %d out of range [0,%d)", i, m.rows)
		}
		out = append(out, m.data[i*m.cols:(i+1)*m.cols]...)
	}
	return &Matrix{rows: len(idx), cols: m.cols, data: out}, nil
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := &Matrix{rows: m.cols, cols: m.rows, data: make([]float64, len(m.data))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("matrix: add %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("matrix: sub %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns alpha * m.
func (m *Matrix) Scale(alpha float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("matrix: mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := &Matrix{rows: m.rows, cols: b.cols, data: make([]float64, m.rows*b.cols)}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			axpyRow(orow, a, brow)
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto writes the matrix-vector product m * v into dst, which must
// have length Rows. Each entry is the same ascending-index dot product
// MulVec computes, so the result is bitwise identical; no memory is
// allocated. dst must not alias v.
//
// Rows run four at a time: one pass over v drives four independent
// accumulator chains, hiding the floating-point add latency a lone dot
// product is bound by. Each accumulator still sums its own row in ascending
// index order, so every dst[i] matches dotRow bit for bit.
func (m *Matrix) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("matrix: mulvec %dx%d by %d: %w", m.rows, m.cols, len(v), ErrShape)
	}
	if len(dst) != m.rows {
		return fmt.Errorf("matrix: mulvec into %d, want %d: %w", len(dst), m.rows, ErrShape)
	}
	c := m.cols
	i := 0
	for ; i <= m.rows-4; i += 4 {
		r0 := m.data[i*c : i*c+c]
		r1 := m.data[(i+1)*c : (i+1)*c+c]
		r2 := m.data[(i+2)*c : (i+2)*c+c]
		r3 := m.data[(i+3)*c : (i+3)*c+c]
		var s0, s1, s2, s3 float64
		for j, vj := range v {
			s0 += r0[j] * vj
			s1 += r1[j] * vj
			s2 += r2[j] * vj
			s3 += r3[j] * vj
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < m.rows; i++ {
		dst[i] = dotRow(m.data[i*c:(i+1)*c], v)
	}
	return nil
}

// dotRow is the bounds-check-free inner product behind MulVecInto: one
// accumulator in ascending index order (the exact addition sequence the
// straight-line loop used, so results are bitwise unchanged), four-way
// unrolled with an equal-length re-slice so the unrolled body carries no
// per-access checks.
func dotRow(row, v []float64) float64 {
	v = v[:len(row)]
	var s float64
	j := 0
	for ; j <= len(row)-4; j += 4 {
		s += row[j] * v[j]
		s += row[j+1] * v[j+1]
		s += row[j+2] * v[j+2]
		s += row[j+3] * v[j+3]
	}
	for ; j < len(row); j++ {
		s += row[j] * v[j]
	}
	return s
}

// MulTVecInto writes mᵀ * v into dst, which must have length Cols, without
// materializing the transpose. Each entry accumulates over ascending row
// index — the order T().MulVec uses — so the result is bitwise identical to
// the allocating route. dst must not alias v.
func (m *Matrix) MulTVecInto(dst, v []float64) error {
	if m.rows != len(v) {
		return fmt.Errorf("matrix: mulvec %dx%d by %d: %w", m.cols, m.rows, len(v), ErrShape)
	}
	if len(dst) != m.cols {
		return fmt.Errorf("matrix: mulvec into %d, want %d: %w", len(dst), m.cols, ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	// Row-major traversal: dst[j] accumulates m[i][j]*v[i] with i ascending,
	// the same addition sequence as a per-column dot product.
	for i := 0; i < m.rows; i++ {
		axpyRow(dst, v[i], m.data[i*m.cols:(i+1)*m.cols])
	}
	return nil
}

// axpyRow computes dst[j] += a*row[j], the unrolled bounds-check-free axpy
// behind MulTVecInto and Mul; element-wise, so unrolling cannot reorder any
// addition into a given dst entry.
func axpyRow(dst []float64, a float64, row []float64) {
	row = row[:len(dst)]
	j := 0
	for ; j <= len(dst)-4; j += 4 {
		dst[j] += a * row[j]
		dst[j+1] += a * row[j+1]
		dst[j+2] += a * row[j+2]
		dst[j+3] += a * row[j+3]
	}
	for ; j < len(dst); j++ {
		dst[j] += a * row[j]
	}
}

// Gram returns mᵀ m, the Gram matrix (symmetric positive semi-definite).
func (m *Matrix) Gram() *Matrix {
	out := &Matrix{rows: m.cols, cols: m.cols, data: make([]float64, m.cols*m.cols)}
	for i := 0; i < m.cols; i++ {
		for j := i; j < m.cols; j++ {
			var s float64
			for k := 0; k < m.rows; k++ {
				s += m.data[k*m.cols+i] * m.data[k*m.cols+j]
			}
			out.data[i*m.cols+j] = s
			out.data[j*m.cols+i] = s
		}
	}
	return out
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether m and b agree entry-wise within absolute tolerance.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of the matrix.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging and error messages.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Solve solves the square linear system m x = b by Gaussian elimination with
// partial pivoting. It returns ErrSingular (wrapped) when the pivot falls
// below a scale-aware threshold.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	n := m.rows
	if m.cols != n {
		return nil, fmt.Errorf("matrix: solve on non-square %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	if len(b) != n {
		return nil, fmt.Errorf("matrix: solve rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	// Work on copies: the receiver must not be mutated.
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	scale := a.FrobeniusNorm()
	if scale == 0 {
		return nil, fmt.Errorf("matrix: zero matrix: %w", ErrSingular)
	}
	tol := scale * 1e-13

	for col := 0; col < n; col++ {
		// Partial pivot: the row with the largest magnitude in this column.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < tol {
			return nil, fmt.Errorf("matrix: pivot %e below tolerance at column %d: %w", best, col, ErrSingular)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.data[col*n+j], a.data[pivot*n+j] = a.data[pivot*n+j], a.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := a.At(r, col) * inv
			if factor == 0 {
				continue
			}
			a.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				a.Set(r, j, a.At(r, j)-factor*a.At(col, j))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix via column-wise solves.
func (m *Matrix) Inverse() (*Matrix, error) {
	n := m.rows
	if m.cols != n {
		return nil, fmt.Errorf("matrix: inverse of non-square %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	out, err := Zero(n, n)
	if err != nil {
		return nil, err
	}
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := range e {
			e[k] = 0
		}
		e[j] = 1
		col, err := m.Solve(e)
		if err != nil {
			return nil, fmt.Errorf("inverse column %d: %w", j, err)
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

// Det returns the determinant of a square matrix via LU elimination.
func (m *Matrix) Det() (float64, error) {
	n := m.rows
	if m.cols != n {
		return 0, fmt.Errorf("matrix: det of non-square %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best == 0 {
			return 0, nil
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.data[col*n+j], a.data[pivot*n+j] = a.data[pivot*n+j], a.data[col*n+j]
			}
			det = -det
		}
		det *= a.At(col, col)
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := a.At(r, col) * inv
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-factor*a.At(col, j))
			}
		}
	}
	return det, nil
}

// Rank returns the numerical rank of the matrix, estimated by Gaussian
// elimination with a relative pivot tolerance.
func (m *Matrix) Rank() int {
	a := m.Clone()
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return 0
	}
	tol := scale * 1e-12
	rank := 0
	row := 0
	for col := 0; col < a.cols && row < a.rows; col++ {
		pivot := row
		best := math.Abs(a.At(row, col))
		for r := row + 1; r < a.rows; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < tol {
			continue
		}
		if pivot != row {
			for j := 0; j < a.cols; j++ {
				a.data[row*a.cols+j], a.data[pivot*a.cols+j] = a.data[pivot*a.cols+j], a.data[row*a.cols+j]
			}
		}
		inv := 1 / a.At(row, col)
		for r := row + 1; r < a.rows; r++ {
			factor := a.At(r, col) * inv
			for j := col; j < a.cols; j++ {
				a.Set(r, j, a.At(r, j)-factor*a.At(row, j))
			}
		}
		rank++
		row++
	}
	return rank
}

// Cholesky returns the lower-triangular factor L with m = L Lᵀ.
// It returns ErrNotSPD (wrapped) if m is not symmetric positive definite.
func (m *Matrix) Cholesky() (*Matrix, error) {
	n := m.rows
	if m.cols != n {
		return nil, fmt.Errorf("matrix: cholesky of non-square %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	if !m.IsSymmetric(1e-10 * (1 + m.FrobeniusNorm())) {
		return nil, fmt.Errorf("matrix: not symmetric: %w", ErrNotSPD)
	}
	l, err := Zero(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("matrix: non-positive pivot %e at %d: %w", s, i, ErrNotSPD)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m x = b for symmetric positive definite m using the
// Cholesky factorization (forward then backward substitution).
func (m *Matrix) SolveCholesky(b []float64) ([]float64, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
