package matrix

import (
	"fmt"
	"math"
	"sort"
)

// maxJacobiSweeps bounds the cyclic Jacobi iteration; convergence for
// symmetric matrices is quadratic, so a handful of sweeps suffices at the
// sizes this module works with.
const maxJacobiSweeps = 100

// SymmetricEigen computes all eigenvalues (ascending) and an orthonormal set
// of eigenvectors of a symmetric matrix using the cyclic Jacobi method.
// Column j of the returned matrix is the eigenvector for eigenvalue j.
//
// It returns ErrShape (wrapped) for non-square input and an error when the
// matrix is not symmetric within a scale-aware tolerance.
func SymmetricEigen(m *Matrix) ([]float64, *Matrix, error) {
	n := m.rows
	if m.cols != n {
		return nil, nil, fmt.Errorf("matrix: eigen of non-square %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("matrix: eigen of empty matrix: %w", ErrShape)
	}
	if !m.IsSymmetric(1e-9 * (1 + m.FrobeniusNorm())) {
		return nil, nil, fmt.Errorf("matrix: eigen requires symmetry: %w", ErrNotSPD)
	}

	a := m.Clone()
	v, err := Identity(n)
	if err != nil {
		return nil, nil, err
	}

	offNorm := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return math.Sqrt(2 * s)
	}

	tol := 1e-14 * (1 + a.FrobeniusNorm())
	for sweep := 0; sweep < maxJacobiSweeps && offNorm() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				// Classic Jacobi rotation annihilating a[p][q].
				theta := (a.At(q, q) - a.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				app, aqq := a.At(p, p), a.At(q, q)
				a.Set(p, p, app-t*apq)
				a.Set(q, q, aqq+t*apq)
				a.Set(p, q, 0)
				a.Set(q, p, 0)
				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(p, k, a.At(k, p))
					a.Set(k, q, s*akp+c*akq)
					a.Set(q, k, a.At(k, q))
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract diagonal, sort ascending, permute eigenvector columns to match.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: a.At(i, i), col: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })

	vals := make([]float64, n)
	vecs, err := Zero(n, n)
	if err != nil {
		return nil, nil, err
	}
	for j, p := range pairs {
		vals[j] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v.At(i, p.col))
		}
	}
	return vals, vecs, nil
}

// EigenBounds returns the smallest and largest eigenvalue of a symmetric
// matrix. This pairing is the workhorse for computing the paper's (γ, µ).
func EigenBounds(m *Matrix) (smallest, largest float64, err error) {
	vals, _, err := SymmetricEigen(m)
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[len(vals)-1], nil
}
