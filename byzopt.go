// Package byzopt is a Go library for approximate Byzantine fault-tolerant
// distributed optimization, reproducing "Approximate Byzantine
// Fault-Tolerance in Distributed Optimization" (Liu, Gupta, Vaidya,
// PODC 2021).
//
// The library covers both halves of the paper:
//
//   - the resilience theory of Section 3 — measuring (2f, ε)-redundancy of
//     a problem instance (MeasureRedundancy), checking a candidate output
//     against the (f, ε)-resilience definition (MeasureResilience), and the
//     exhaustive (f, 2ε)-resilient algorithm of Theorem 2
//     (ExhaustiveResilient);
//
//   - the algorithmic half of Section 4 — distributed gradient descent with
//     pluggable gradient filters (RunContext), including the paper's CGE and
//     CWTM filters plus literature baselines, Byzantine behavior models, and
//     the Theorem 4/5/6 resilience bounds.
//
// # One execution interface, several substrates
//
// Every execution goes through the context-first Backend interface:
//
//	type Backend interface {
//	        Run(ctx context.Context, cfg Config) (*Result, error)
//	}
//
// InProcessBackend runs the deterministic simulation in this process;
// ClusterBackend serves the same Config over the server/transport stack of
// Figure 1 (left), one in-memory connection per agent; and P2PBackend runs
// it fully decentralized over Byzantine broadcast (Figure 1, right; n > 3f).
// A fault-free Config produces the identical trajectory on all three, so
// code written against one substrate moves to the others unchanged. A
// minimal fault-tolerant run, cancellable through its context:
//
//	filter, _ := byzopt.NewFilter("cge")
//	res, err := byzopt.RunContext(ctx, byzopt.Config{
//	        Agents: agents, F: 1, Filter: filter,
//	        X0: []float64{0, 0}, Rounds: 500,
//	})
//
// Run is the context-free shorthand; both execute on the in-process
// backend. Cancellation takes effect within one round and surfaces as a
// wrapped ctx.Err().
//
// # Observing rounds
//
// Config.Observer receives every estimate x_t together with the tracked
// loss and distance values (NaN when the corresponding Config field is
// unset); returning an error aborts the run. ObserverFunc adapts a plain
// function, and TraceRecorder is the canonical observer, recording the full
// per-round series:
//
//	rec := &byzopt.TraceRecorder{}
//	res, err := byzopt.RunContext(ctx, byzopt.Config{
//	        Agents: agents, F: 1, Filter: filter,
//	        X0: x0, Rounds: 500, Reference: xH,
//	        Observer: rec,
//	})
//	// rec.Dist[t] is ||x_t - x_H|| for every round.
//
// All backends honor observers, so instrumentation is portable between the
// in-process engine and the cluster.
//
// # Asynchronous rounds
//
// Config.Async replaces the synchronous round with a deterministic
// virtual-time model: agents take latencies from a seeded distribution
// (AsyncConfig.Latency, optionally with persistent stragglers), the server
// closes each round per a collection policy (wait-all, first-k partial
// aggregation, or a virtual-time deadline), and late gradients are dropped,
// reused, or staleness-weighted (AsyncConfig.Stale). Time is simulated, so
// runs stay bitwise reproducible on every substrate — and a zero-latency
// wait-all AsyncConfig is bitwise identical to the synchronous path.
// SweepSpec.Asyncs sweeps such models as a grid axis (AsyncSpec), and
// observers implementing AsyncObserver (TraceRecorder does) receive each
// round's arrival count, staleness, and virtual time.
//
// # Fault injection
//
// Config.Chaos layers deterministic system faults — crash, omission,
// in-transit corruption (detected by CRC framing and reclassified as
// omission), duplication, and delay — over any run (ChaosPlan): every
// injection is a pure function of (seed, round, agent), so faulted runs
// replay bit for bit on every substrate, and a nil plan is bitwise
// identical to today's fault-free path. Honest agents hit by injected
// faults route into the partial-aggregation machinery (with bounded
// per-message retry) instead of failing the run; results report the
// absorbed faults as ChaosCounters. SweepSpec.Chaoses sweeps fault plans
// as a grid axis (ChaosSpec) whose faulted cells export the "degraded"
// status, and the abft-chaos command soaks filter × fault-rate grids into
// degradation curves.
//
// # Scenario sweeps
//
// The paper's evaluation is a grid — a workload × filters × Byzantine
// behaviors × fault counts — and the sweep engine runs such grids as one
// call, expanding a declarative spec into scenarios and executing them
// concurrently on a worker pool. Every scenario derives its random seed by
// hashing its own key, so results are identical at any worker count and a
// sweep replays exactly from its spec:
//
//	results, err := byzopt.SweepContext(ctx, byzopt.SweepSpec{
//	        Filters:   []string{"cge", "cwtm", "krum"},
//	        Behaviors: []string{"gradient-reverse", "random"},
//	        FValues:   []int{1, 2},
//	        Workers:   0, // 0 = GOMAXPROCS
//	})
//	// results[i].FinalDist is ||x_T - x_H|| for grid point i;
//	// byzopt.WriteSweepJSON(os.Stdout, results, false) exports them.
//
// Leaving SweepSpec fields zero selects the paper's defaults (every
// registered filter and behavior, n = 6, d = 2, 500 rounds).
// SweepSpec.Backend selects the substrate per sweep (nil means in-process;
// ClusterBackend turns the sweep into a distributed-system load generator),
// SweepSpec.ScenarioTimeout bounds each scenario (exceeding it yields a
// "timeout" result, like divergence — data, not failure), and cancelling
// the context of SweepContext returns the completed scenarios as partial
// results plus a wrapped context.Canceled. SweepSpec.RecordTrace exports
// the full per-round loss/distance series per scenario, which is how the
// figure series are produced. Per-run gradient collection parallelizes
// independently via Config.Workers (SweepSpec.DGDWorkers inside a sweep).
// The abft-sweep command is this API as a CLI.
//
// # Pluggable problems
//
// Workloads are first-class: SweepSpec.Problem names an entry in the
// problem registry, which ships every workload of the paper's evaluation —
// "paper" (the exact Appendix-J regression instance), "synthetic"
// (deterministic regression at any size), the "learning" family (Appendix-K
// minibatch D-SGD on softmax or MLP models, with per-round test accuracy as
// a task metric), "sensing" (Section-2.4 state estimation), and
// "robustmean" (Section-2.3 robust mean estimation). A Problem materializes
// per-agent costs, the reference point x_H, the honest loss, the initial
// point, and optional metrics for every grid point; implement the interface
// and RegisterProblem to sweep any workload you can express, or hand a
// one-off implementation to SweepSpec.ProblemDef without naming it (see
// examples/customproblem):
//
//	byzopt.RegisterProblem(myProblem{})             // name-keyed, CLI-reachable
//	results, err := byzopt.Sweep(byzopt.SweepSpec{Problem: "my-problem"})
//
// SweepSpec.Baselines adds the papers' fault-free baseline — the f would-be
// Byzantine agents omitted entirely — as a grid axis, which is how the
// fault-free curves of Figures 2-5 are produced. SweepSpec.Shard slices the
// expanded grid deterministically for multi-process runs, and MergeSweepJSON
// recombines shard exports into the byte-identical full export (abft-sweep
// -shard / -merge at the CLI). All of abft-bench's tables and figures run
// through these Specs.
//
// The deeper machinery (matrix solvers, transports, the EIG broadcast
// protocol behind P2PBackend, experiment drivers) lives in internal
// packages; the runnable programs under examples/ and cmd/ show them in
// action.
package byzopt

import (
	"context"
	"io"
	"net"
	"time"

	"byzopt/internal/aggregate"
	"byzopt/internal/byzantine"
	"byzopt/internal/chaos"
	"byzopt/internal/cluster"
	"byzopt/internal/core"
	"byzopt/internal/costfunc"
	"byzopt/internal/dgd"
	"byzopt/internal/matrix"
	"byzopt/internal/p2p"
	"byzopt/internal/simtime"
	"byzopt/internal/sweep"
	"byzopt/internal/vecmath"
)

// --- filters ---

// Filter is a gradient aggregation rule ("gradient filter", Section 4).
type Filter = aggregate.Filter

// NewFilter returns the filter registered under the given name. Fixed names
// are listed by FilterNames; additionally, the parameterized families of
// FilterFamilyPrefixes resolve spellings like "multikrum-7" or "gmom-5" to a
// family member with that parameter. Unknown names fail with an error
// listing the full registry.
func NewFilter(name string) (Filter, error) { return aggregate.New(name) }

// FilterNames lists the built-in filters in registration order: the paper's
// cge and cwtm, the plain mean baseline, the literature baselines (cwmedian,
// krum, multikrum, bulyan, geomedian, gmom, centeredclip), their
// sub-quadratic sketch/sampled variants, and the REDGRAF family (sdmmfd,
// r-sdmmfd, sdfd, rvo) — plus anything added via RegisterFilter.
func FilterNames() []string { return aggregate.Names() }

// RegisterFilter adds a constructor to the filter registry under a fixed
// name, making it reachable from NewFilter, SweepSpec.Filters, and the CLIs'
// -filters flags. Empty and duplicate names are rejected, so built-ins
// cannot be silently shadowed.
func RegisterFilter(name string, ctor func() Filter) error { return aggregate.Register(name, ctor) }

// RegisterFilterParam adds a parameterized filter family under a name
// prefix: NewFilter("<prefix>-<k>") calls ctor(k) for any positive integer
// k. Fixed names always win over family spellings, so a family never
// shadows a registered name.
func RegisterFilterParam(prefix string, ctor func(param int) (Filter, error)) error {
	return aggregate.RegisterParam(prefix, ctor)
}

// FilterFamilyPrefixes lists the parameterized family prefixes in
// registration order (multikrum, gmom, multikrum-sketch, multikrum-sampled,
// plus anything added via RegisterFilterParam): each accepts "<prefix>-<k>"
// spellings in every place a filter name is accepted.
func FilterFamilyPrefixes() []string { return aggregate.FamilyPrefixes() }

// IntoFilter is the allocation-free face every built-in filter implements:
// AggregateInto writes the aggregate into a caller buffer and draws every
// temporary from a reusable FilterScratch, bitwise identical to Aggregate.
// The engines detect it automatically — see the README's performance
// section for when the zero-allocation round loop engages.
type IntoFilter = aggregate.IntoFilter

// FilterScratch owns a filter's reusable temporaries (pairwise-distance
// matrix, per-coordinate columns, Weiszfeld iterates, ...). The zero value
// is ready; hand the same one to successive AggregateInto calls from a
// single goroutine.
type FilterScratch = aggregate.Scratch

// CGE is the paper's comparative gradient elimination filter (eq. 23).
type CGE = aggregate.CGE

// CWTM is the paper's coordinate-wise trimmed mean filter (eq. 24).
type CWTM = aggregate.CWTM

// Mean is plain averaging, the fault-intolerant baseline.
type Mean = aggregate.Mean

// MultiKrum is the multi-Krum filter family; the registry resolves
// "multikrum" to the M = 3 default and "multikrum-<k>" to MultiKrum{M: k}.
type MultiKrum = aggregate.MultiKrum

// SDMMFD is the REDGRAF distance-then-mixmax filter adapted to server-side
// gradient filtering (registered as "sdmmfd"): a distance stage drops the f
// reports farthest from an auxiliary center carried across rounds, then a
// coordinate-wise f-trimmed mean aggregates the survivors. Requires
// n > 3f.
type SDMMFD = aggregate.SDMMFD

// RSDMMFD is the reduced, stateless SDMMFD variant (registered as
// "r-sdmmfd"): the per-round coordinate-wise median plays the auxiliary
// center. Requires n > 3f.
type RSDMMFD = aggregate.RSDMMFD

// SDFD is the REDGRAF distance-only filter (registered as "sdfd"): the
// SDMMFD distance stage followed by a plain mean of the survivors. Requires
// n > 2f.
type SDFD = aggregate.SDFD

// RVO is the REDGRAF resilient-vector-optimization filter (registered as
// "rvo"): the coordinate-wise trimmed midrange. Requires n > 2f.
type RVO = aggregate.RVO

// SeedConfigurable is the optional filter face for filters carrying
// cross-round auxiliary state (the stateful REDGRAF filters): the engines
// hand each run's scenario seed to ConfigureSeed so the state chain is keyed
// to the run and reproduces bitwise on every substrate and worker count.
type SeedConfigurable = aggregate.SeedConfigurable

// --- Byzantine behaviors ---

// Behavior models what a faulty agent reports instead of its gradient.
type Behavior = byzantine.Behavior

// NewBehavior returns the behavior registered under the given name; see
// BehaviorNames.
func NewBehavior(name string, seed int64) (Behavior, error) { return byzantine.New(name, seed) }

// BehaviorNames lists the built-in behaviors (gradient-reverse, random,
// zero, ipm, alie, equivocate). "equivocate" reverses its gradient like
// gradient-reverse and additionally lies while relaying other peers'
// broadcasts — a distinction only P2PBackend realizes; on the other
// substrates it behaves exactly like gradient-reverse.
func BehaviorNames() []string { return byzantine.Names() }

// --- costs ---

// Cost is a differentiable local cost function Q_i.
type Cost = costfunc.Differentiable

// LeastSquaresCost builds the regression cost ||b - A x||^2 from design
// rows and responses (one row per observation).
func LeastSquaresCost(rows [][]float64, b []float64) (Cost, error) {
	a, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return costfunc.NewLeastSquares(a, b)
}

// SingleObservationCost builds one agent's cost (b - row.x)^2, the per-agent
// cost of the paper's regression experiments.
func SingleObservationCost(row []float64, b float64) (Cost, error) {
	return costfunc.NewSingleRowLeastSquares(row, b)
}

// SumCost aggregates costs: sum_i Q_i.
func SumCost(costs ...Cost) (Cost, error) { return costfunc.NewSum(costs...) }

// --- agents ---

// Agent produces the gradient reported to the server each round.
type Agent = dgd.Agent

// IntoAgent is the optional allocation-free face of Agent: GradientInto
// writes the report into an engine-owned arena row. Agents built by
// HonestAgent implement it (costs with a costfunc gradient-into oracle
// write straight into the row); others fall back transparently.
type IntoAgent = dgd.IntoAgent

// HonestAgent wraps a cost as a truthful agent.
func HonestAgent(cost Cost) (Agent, error) { return dgd.NewHonest(cost) }

// HonestAgents wraps each cost as a truthful agent, in order.
func HonestAgents(costs []Cost) ([]Agent, error) { return dgd.HonestAgents(costs) }

// ByzantineAgent wraps an agent with a faulty behavior; inner may be nil
// (the behavior then sees a zero vector as the "true" gradient).
func ByzantineAgent(inner Agent, b Behavior) (Agent, error) { return dgd.NewFaulty(inner, b) }

// --- constraint set ---

// Box is the compact convex constraint set W of update rule (21).
type Box = vecmath.Box

// NewBox builds a box from per-coordinate bounds.
func NewBox(lo, hi []float64) (*Box, error) { return vecmath.NewBox(lo, hi) }

// NewCube builds the hypercube [-r, r]^d.
func NewCube(d int, r float64) (*Box, error) { return vecmath.NewCube(d, r) }

// --- the DGD engine ---

// Config describes one distributed gradient-descent execution (Section 4.1).
type Config = dgd.Config

// Result is the outcome of a run.
type Result = dgd.Result

// Trace holds per-iteration loss/distance series.
type Trace = dgd.Trace

// StepSchedule yields the step size per round.
type StepSchedule = dgd.StepSchedule

// Diminishing is the schedule c/(t+1)^p; the paper uses 1.5/(t+1).
type Diminishing = dgd.Diminishing

// ConstantStep is the fixed schedule used by the learning experiments.
type ConstantStep = dgd.Constant

// RoundObserver observes every estimate of a run (t = 0..Rounds) together
// with the tracked loss and distance values; see Config.Observer.
type RoundObserver = dgd.RoundObserver

// ObserverFunc adapts a function to the RoundObserver interface.
type ObserverFunc = dgd.ObserverFunc

// TraceRecorder is a RoundObserver recording the full per-round series
// (estimates, loss, distance) for export. It also implements AsyncObserver,
// collecting per-round AsyncRoundStats in its Async field when the run uses
// the asynchronous round model.
type TraceRecorder = dgd.TraceRecorder

// --- the asynchronous round model ---

// AsyncConfig enables the deterministic virtual-time asynchronous round
// model for a run (Config.Async): per-agent latencies drawn from a seeded
// LatencyModel, a collection policy deciding when the round closes, and a
// staleness policy deciding what happens to late gradients. A zero-latency
// wait-all AsyncConfig is bitwise identical to leaving Config.Async nil.
type AsyncConfig = dgd.AsyncConfig

// LatencyModel is the per-agent virtual-time delay distribution of the
// asynchronous round model: fixed, uniform, or heavy-tailed Pareto delays,
// with an optional fraction of agents designated persistent stragglers.
// Every draw is a pure function of (seed, round, agent), which is what
// keeps asynchronous runs bitwise reproducible on every substrate.
type LatencyModel = simtime.Latency

// The latency distribution kinds of LatencyModel.Kind.
const (
	LatencyFixed   = simtime.LatencyFixed
	LatencyUniform = simtime.LatencyUniform
	LatencyPareto  = simtime.LatencyPareto
)

// The collection policies of AsyncConfig.Policy: wait for every live agent,
// aggregate the k earliest arrivals (partial aggregation, with the
// effective fault bound adjusted to the input actually collected), or close
// the round on a virtual-time budget.
const (
	CollectWaitAll  = dgd.CollectWaitAll
	CollectFirstK   = dgd.CollectFirstK
	CollectDeadline = dgd.CollectDeadline
)

// The staleness policies of AsyncConfig.Stale: drop late gradients, reuse
// an agent's most recent banked gradient, or reuse it scaled by
// 1/(1 + staleness).
const (
	StaleDrop     = dgd.StaleDrop
	StaleReuse    = dgd.StaleReuse
	StaleWeighted = dgd.StaleWeighted
)

// AsyncRoundStats describes one asynchronous round: how many gradients
// arrived fresh, how many were substituted from stale banks or dropped, the
// worst staleness substituted, and the virtual time at the round's close.
type AsyncRoundStats = dgd.AsyncRoundStats

// AsyncObserver is the optional observer face receiving AsyncRoundStats
// each round; implement it alongside RoundObserver (TraceRecorder does) to
// instrument asynchronous runs.
type AsyncObserver = dgd.AsyncObserver

// AsyncSpec is one point on a sweep's asynchrony axis (SweepSpec.Asyncs) in
// declarative, JSON-serializable form. Sync-equivalent specs collapse to
// the synchronous path and leave scenario keys untouched, so adding the
// axis never perturbs existing grids.
type AsyncSpec = sweep.AsyncSpec

// --- deterministic fault injection ---

// ChaosPlan declares deterministic system-fault injection for a run
// (Config.Chaos): crash, omission, corruption, duplication, and delay
// faults, each a pure function of (seed, round, agent) — so any run under a
// plan replays bit for bit on every substrate. Honest agents hit by
// injected faults are ridden out through the partial-aggregation machinery
// (with an optional per-message retry budget) instead of failing the run;
// a nil plan is bitwise identical to no fault layer at all.
type ChaosPlan = chaos.Plan

// ChaosCounters tallies the injected faults a run absorbed, by kind.
type ChaosCounters = chaos.Counters

// ChaosRoundStats describes one round under fault injection: the faults
// injected that round and the number of gradients lost to them.
type ChaosRoundStats = dgd.ChaosRoundStats

// ChaosObserver is the optional observer face receiving ChaosRoundStats
// each round; implement it alongside RoundObserver to instrument runs
// under fault injection.
type ChaosObserver = dgd.ChaosObserver

// ChaosSpec is one point on a sweep's fault-injection axis
// (SweepSpec.Chaoses) in declarative, JSON-serializable form. No-fault
// specs run without the chaos layer and leave scenario keys untouched, so
// adding the axis never perturbs existing grids; faulted cells export the
// "degraded" status with their ChaosCounters tally.
type ChaosSpec = sweep.ChaosSpec

// Run executes the configured DGD simulation on the in-process backend,
// without cancellation (RunContext with a background context).
func Run(cfg Config) (*Result, error) { return dgd.Run(cfg) }

// RunContext executes the configured DGD simulation on the in-process
// backend. Cancellation or deadline expiry of ctx aborts the run within one
// round and returns a wrapped ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) { return dgd.RunContext(ctx, cfg) }

// --- execution backends ---

// Backend is the uniform execution interface over the repo's substrates: a
// Backend runs one configured DGD execution to completion under a context.
// SweepSpec.Backend accepts any implementation, so scenario grids run
// unchanged in-process or over the cluster stack.
type Backend = dgd.Backend

// InProcessBackend returns the Backend executing runs with the
// deterministic in-process engine — the substrate behind Run/RunContext.
func InProcessBackend() Backend { return dgd.InProcess{} }

// ClusterBackend returns a Backend executing each run over the
// server/transport stack of the paper's Figure 1: every agent is served by
// its own in-memory connection and a trusted server drives the synchronous
// protocol, eliminating agents that miss the per-round deadline
// (roundTimeout; zero selects a generous default). Fault-free runs and
// runs whose Byzantine behaviors are not omniscient reproduce the
// in-process trajectory exactly; omniscient behaviors degrade to their
// non-omniscient path, since an agent behind a connection cannot observe
// the other agents' reports.
func ClusterBackend(roundTimeout time.Duration) Backend {
	return &cluster.Backend{RoundTimeout: roundTimeout}
}

// P2PBackend returns the Backend executing each run over the fully
// decentralized peer-to-peer substrate of the paper's Figure 1 (right):
// every agent becomes a peer on a complete network, each round every
// report goes through an EIG Byzantine broadcast, and every honest peer
// applies the gradient filter locally to the agreed-upon report set — the
// Section-1.4 simulation of the server-based algorithm, requiring n > 3f
// (configurations violating the bound are rejected with a wrapped
// inadmissibility sentinel that sweeps classify as skipped cells).
// Fault-free runs and runs whose Byzantine agents do not equivocate in the
// broadcast layer — omniscient behaviors included — reproduce the
// in-process trajectory exactly; the "equivocate" behavior additionally
// lies while relaying other peers' broadcasts, the one adversary only this
// substrate can express.
func P2PBackend() Backend { return p2p.Backend{} }

// --- scenario sweeps ---

// SweepSpec declares a scenario matrix: filters × behaviors × f × n ×
// dimension × step schedules. Zero fields select the paper's defaults.
type SweepSpec = sweep.Spec

// SweepScenario identifies one expanded grid point of a sweep.
type SweepScenario = sweep.Scenario

// SweepResult is one scenario's outcome: final distance to x_H, loss
// summary, wall time, and divergence/skip classification.
type SweepResult = sweep.Result

// Sweep expands the spec and runs every scenario concurrently with
// deterministic per-scenario seeds; results are identical at any worker
// count (SweepContext with a background context).
func Sweep(spec SweepSpec) ([]SweepResult, error) { return sweep.Run(spec) }

// SweepContext runs the sweep under a context: cancellation stops the pool
// within one scenario's duration and returns the scenarios completed so far
// as partial results, in grid order, plus an error wrapping ctx.Err().
// Per-scenario deadlines (SweepSpec.ScenarioTimeout) never fail the sweep —
// an overrunning scenario is classified as a "timeout" result instead.
func SweepContext(ctx context.Context, spec SweepSpec) ([]SweepResult, error) {
	return sweep.RunContext(ctx, spec)
}

// SweepScenarios expands the spec without running it, in execution order.
func SweepScenarios(spec SweepSpec) ([]SweepScenario, error) { return sweep.Scenarios(spec) }

// SweepShard selects a contiguous slice of a sweep's expanded grid
// (SweepSpec.Shard), the unit of multi-process sharding.
type SweepShard = sweep.Shard

// MergeSweepResults recombines shard results into the full-grid list; see
// MergeSweepJSON for the file-level face.
func MergeSweepResults(shards ...[]SweepResult) ([]SweepResult, error) {
	return sweep.MergeResults(shards...)
}

// MergeSweepJSON reads shard JSON exports and recombines them into the
// full-grid result list — exporting it with WriteSweepJSON reproduces the
// unsharded run's bytes exactly.
func MergeSweepJSON(paths ...string) ([]SweepResult, error) {
	return sweep.MergeJSONFiles(paths...)
}

// --- the distributed sweep fabric ---

// SweepCoordinatorSpec configures CoordinateSweep: the grid to serve plus
// the lease TTL / batch size and checkpoint path of the dispatch fabric.
type SweepCoordinatorSpec = sweep.CoordinatorSpec

// SweepWorkerOptions configures one SweepWork worker process.
type SweepWorkerOptions = sweep.WorkerOptions

// CoordinateSweep serves the spec's scenario grid over ln to a fleet of
// SweepWork workers (or `abft-sweep -worker` processes) and returns the
// full grid in grid order — byte-identical, once exported, to a
// single-process Sweep of the same spec. Workers lease bounded cell
// batches; a crashed or wedged worker's cells are reassigned after its
// lease TTL, and with a checkpoint path set, a restarted coordinator
// resumes the grid running only the missing cells.
func CoordinateSweep(ctx context.Context, ln net.Listener, cs SweepCoordinatorSpec) ([]SweepResult, error) {
	return sweep.Coordinate(ctx, ln, cs)
}

// SweepWork runs one sweep worker against the coordinator at addr until
// the grid completes (nil) or ctx is cancelled (ctx's error).
func SweepWork(ctx context.Context, addr string, opts SweepWorkerOptions) error {
	return sweep.Work(ctx, addr, opts)
}

// --- the problem registry ---

// Problem is a pluggable sweep workload: it materializes per-agent costs,
// the reference point x_H, the honest aggregate loss, the initial point,
// and optional task metrics for every scenario that names it. Register
// implementations with RegisterProblem (or hand one to SweepSpec.ProblemDef
// for a one-off).
type Problem = sweep.Problem

// Workload is one materialized problem instance; Problem.Build returns it.
type Workload = sweep.Workload

// Metric is an optional per-round task metric a Workload can expose (e.g.
// test accuracy), recorded alongside the loss and distance series.
type Metric = sweep.Metric

// LearningProblem is the Appendix-K distributed-learning workload
// (registered as "learning", "learning-b", and "learning-mlp"); configure
// and register your own instance for different presets, models, batch
// sizes, or accuracy cadences.
type LearningProblem = sweep.LearningProblem

// RegisterProblem adds a problem to the sweep registry under its Name();
// duplicate and empty names are rejected.
func RegisterProblem(p Problem) error { return sweep.Register(p) }

// ProblemNames lists the registered problem names in sorted order — the
// values SweepSpec.Problem (and abft-sweep -problem) accept.
func ProblemNames() []string { return sweep.ProblemNames() }

// LookupProblem returns the problem registered under the given name.
func LookupProblem(name string) (Problem, error) { return sweep.LookupProblem(name) }

// --- trace metrics ---

// TraceMetric is a pluggable post-hoc metric evaluated on a scenario's
// recorded trace after the run completes (SweepSpec.TraceMetrics selects
// them by name). Metrics never influence the dynamics, scenario keys, or
// seeds — they are pure functions of the trace — so adding one to a sweep
// never perturbs its results. The built-ins are the REDGRAF
// convergence-geometry metrics (TraceMetricConvergenceRate,
// TraceMetricConvergenceRadius, TraceMetricConsensusDiameter) and
// "test_accuracy" for problems exposing that task metric.
type TraceMetric = sweep.TraceMetric

// TraceMetricInput is the recorded material a TraceMetric evaluates: the
// per-round loss and distance series, the estimates (when the metric
// declares NeedEstimates), the workload, and the round count.
type TraceMetricInput = sweep.TraceInput

// The built-in REDGRAF convergence-geometry metric names.
const (
	// TraceMetricConvergenceRate is the per-round geometric contraction
	// rate of the distance series, fit by least squares on its log.
	TraceMetricConvergenceRate = sweep.TraceMetricConvergenceRate
	// TraceMetricConvergenceRadius is the radius of the ball the iterates
	// settle into: the maximum distance to x_H over the trailing quarter
	// of the run.
	TraceMetricConvergenceRadius = sweep.TraceMetricConvergenceRadius
	// TraceMetricConsensusDiameter is the diameter of the bounding box the
	// trailing-quarter estimates sweep — how tightly the dynamics have
	// contracted in space.
	TraceMetricConsensusDiameter = sweep.TraceMetricConsensusDiameter
)

// RegisterTraceMetric adds a metric to the trace-metric registry under
// m.Name, making it selectable from SweepSpec.TraceMetrics. Empty and
// duplicate names are rejected.
func RegisterTraceMetric(m TraceMetric) error { return sweep.RegisterTraceMetric(m) }

// LookupTraceMetric returns the metric registered under the given name.
func LookupTraceMetric(name string) (TraceMetric, bool) { return sweep.LookupTraceMetric(name) }

// TraceMetricNames lists the registered trace-metric names in sorted order.
func TraceMetricNames() []string { return sweep.TraceMetricNames() }

// WriteSweepJSON exports sweep results as indented JSON; wall-clock
// timings are stripped unless includeTiming is set, making the output a
// pure function of the spec.
func WriteSweepJSON(w io.Writer, results []SweepResult, includeTiming bool) error {
	return sweep.WriteJSON(w, results, includeTiming)
}

// --- resilience theory (Section 3) ---

// SubsetProblem exposes a multi-agent instance whose subset aggregates can
// be minimized exactly, the structure the Section-3 theory quantifies over.
// (Sweep workloads are the separate Problem interface above.)
type SubsetProblem = core.Problem

// RegressionProblem builds a SubsetProblem from regression data (one row
// and response per agent).
func RegressionProblem(rows [][]float64, b []float64) (SubsetProblem, error) {
	a, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return core.NewLeastSquaresProblem(a, b)
}

// RedundancyReport is the result of measuring (2f, ε)-redundancy.
type RedundancyReport = core.RedundancyReport

// MeasureRedundancy computes the tight redundancy parameter ε of
// Definition 3 by subset enumeration (Appendix J.2 procedure),
// sequentially.
func MeasureRedundancy(p SubsetProblem, f int) (*RedundancyReport, error) {
	return core.MeasureRedundancy(p, f, core.AtLeastSize)
}

// MeasureRedundancyWorkers is MeasureRedundancy with the subset enumeration
// chunked across up to workers goroutines (0 auto-sizes, negative means
// GOMAXPROCS); the report is bitwise-identical at any worker count. With
// workers != 1 the problem's MinimizeSubset must be safe for concurrent
// use, which every problem constructor in this library satisfies.
func MeasureRedundancyWorkers(p SubsetProblem, f, workers int) (*RedundancyReport, error) {
	return core.MeasureRedundancyWorkers(p, f, core.AtLeastSize, workers)
}

// ResilienceReport quantifies a candidate output against Definition 2.
type ResilienceReport = core.ResilienceReport

// MeasureResilience evaluates the worst-case distance from x to any
// (n-f)-subset aggregate minimizer of the given honest agents.
func MeasureResilience(p SubsetProblem, f int, honest []int, x []float64) (*ResilienceReport, error) {
	return core.MeasureResilience(p, f, honest, x)
}

// ExhaustiveResult is the output of the Theorem-2 algorithm.
type ExhaustiveResult = core.ExhaustiveResult

// ExhaustiveResilient runs the exhaustive (f, 2ε)-resilient algorithm from
// the proof of Theorem 2.
func ExhaustiveResilient(p SubsetProblem, f int) (*ExhaustiveResult, error) {
	return core.ExhaustiveResilient(p, f)
}

// Feasible reports Lemma 1's feasibility condition f < n/2.
func Feasible(n, f int) bool { return core.Feasible(n, f) }

// --- resilience bounds (Section 4.2) ---

// CGEBound is a CGE resilience constant (Theorems 4 and 5).
type CGEBound = core.CGEBound

// CGEBoundTheorem4 evaluates Theorem 4: D = 4µf/(αγ) with
// α = 1 - (f/n)(1 + 2µ/γ).
func CGEBoundTheorem4(n, f int, mu, gamma float64) (*CGEBound, error) {
	return core.CGEResilienceTheorem4(n, f, mu, gamma)
}

// CGEBoundTheorem5 evaluates Theorem 5, the tighter bound exploiting
// 2f-redundancy: D = (1+2f)(n-2f)µ/(αnγ) with α = 1 - (f/n)(1 + µ/γ).
func CGEBoundTheorem5(n, f int, mu, gamma float64) (*CGEBound, error) {
	return core.CGEResilienceTheorem5(n, f, mu, gamma)
}

// CWTMBound is the CWTM resilience constant (Theorem 6).
type CWTMBound = core.CWTMBound

// CWTMBoundTheorem6 evaluates Theorem 6: D' = 2√d nµλ/(γ - √d µλ),
// requiring λ < γ/(µ√d).
func CWTMBoundTheorem6(n, f, dim int, mu, gamma, lambda float64) (*CWTMBound, error) {
	return core.CWTMResilienceTheorem6(n, f, dim, mu, gamma, lambda)
}
