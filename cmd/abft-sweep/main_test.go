package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSmallGridWritesDeterministicJSON(t *testing.T) {
	dir := t.TempDir()
	read := func(workers string) []byte {
		t.Helper()
		path := filepath.Join(dir, "out-"+workers+".json")
		err := run(context.Background(), []string{
			"-filters", "cge,cwtm", "-behaviors", "gradient-reverse,random",
			"-f", "1,2", "-rounds", "30", "-workers", workers,
			"-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := read("1"), read("8")
	if !bytes.Equal(seq, par) {
		t.Error("JSON differs between -workers 1 and -workers 8")
	}
	var results []map[string]any
	if err := json.Unmarshal(seq, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 8 {
		t.Errorf("2 filters x 2 behaviors x 2 f-values should give 8 results, got %d", len(results))
	}
}

func TestRunPaperProblem(t *testing.T) {
	if err := run(context.Background(), []string{
		"-problem", "paper", "-filters", "cge", "-behaviors", "gradient-reverse",
		"-rounds", "50",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunStepSweepAndBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{
		"-filters", "cwtm", "-behaviors", "zero", "-rounds", "10", "-steps", "0.05", "-quiet",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-f", "x"}, os.Stdout); err == nil {
		t.Error("bad -f should error")
	}
	if err := run(ctx, []string{"-filters", "bogus"}, os.Stdout); err == nil {
		t.Error("unknown filter should error")
	}
	if err := run(ctx, []string{"-steps", "abc"}, os.Stdout); err == nil {
		t.Error("bad -steps should error")
	}
	if err := run(ctx, []string{"-backend", "bogus"}, os.Stdout); err == nil {
		t.Error("unknown backend should error")
	}
}

// TestRunLearningProblem: -problem accepts any registered name; the
// learning workload must run end to end and export its accuracy metric.
func TestRunLearningProblem(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learn.json")
	err := run(context.Background(), []string{
		"-problem", "learning", "-filters", "cwtm,cge-avg", "-behaviors", "label-flip,gradient-reverse",
		"-f", "3", "-n", "10", "-d", "20", "-rounds", "4", "-baseline", "-quiet", "-json", path,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Problem  string  `json:"problem"`
		Baseline bool    `json:"baseline"`
		Metric   string  `json:"metric"`
		Final    float64 `json:"metric_final"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	// 2 filters x 2 behaviors + 2 baseline cells.
	if len(results) != 6 {
		t.Fatalf("%d results, want 6", len(results))
	}
	var baselines int
	for _, r := range results {
		if r.Problem != "learning" || r.Metric != "test_accuracy" || r.Final <= 0 {
			t.Errorf("unexpected result %+v", r)
		}
		if r.Baseline {
			baselines++
		}
	}
	if baselines != 2 {
		t.Errorf("%d baseline cells, want 2", baselines)
	}
}

// TestShardMergeRoundTripsByteIdentically is the CLI acceptance guarantee:
// running the same spec as -shard slices and recombining the exports with
// -merge reproduces the unsharded JSON byte for byte, even with the shard
// files supplied out of order.
func TestShardMergeRoundTripsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	args := func(extra ...string) []string {
		base := []string{
			"-problem", "learning", "-filters", "cwtm,cge-avg",
			"-behaviors", "label-flip,gradient-reverse", "-f", "3", "-n", "10",
			"-d", "20", "-rounds", "3", "-baseline", "-quiet",
		}
		return append(base, extra...)
	}
	full := filepath.Join(dir, "full.json")
	if err := run(context.Background(), args("-json", full), os.Stdout); err != nil {
		t.Fatal(err)
	}
	shardPaths := make([]string, 3)
	for i := range shardPaths {
		shardPaths[i] = filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		if err := run(context.Background(),
			args("-shard", fmt.Sprintf("%d/3", i), "-json", shardPaths[i]), os.Stdout); err != nil {
			t.Fatal(err)
		}
	}
	merged := filepath.Join(dir, "merged.json")
	if err := run(context.Background(), []string{
		"-merge", "-quiet", "-json", merged,
		shardPaths[2], shardPaths[0], shardPaths[1], // scrambled on purpose
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merged shard export differs from the unsharded export")
	}
}

func TestShardAndMergeBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-shard", "2"}, os.Stdout); err == nil {
		t.Error("malformed -shard should error")
	}
	if err := run(ctx, []string{"-shard", "3/2"}, os.Stdout); err == nil {
		t.Error("out-of-range -shard should error")
	}
	if err := run(ctx, []string{"-merge"}, os.Stdout); err == nil {
		t.Error("-merge without files should error")
	}
	if err := run(ctx, []string{"-merge", filepath.Join(t.TempDir(), "missing.json")}, os.Stdout); err == nil {
		t.Error("-merge with a missing file should error")
	}
}

// TestRunClusterBackendMatchesInProcess: the CLI's -backend flag must not
// change the exported JSON for a fault-free grid — the backend-parity
// guarantee surfaced at the command level, for every substrate the flag
// accepts.
func TestRunClusterBackendMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	read := func(backend string) []byte {
		t.Helper()
		path := filepath.Join(dir, "out-"+backend+".json")
		err := run(context.Background(), []string{
			"-filters", "cge,cwtm,mean", "-f", "0", "-rounds", "40",
			"-backend", backend, "-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	inprocess := read("inprocess")
	for _, backend := range []string{"cluster", "p2p"} {
		if !bytes.Equal(inprocess, read(backend)) {
			t.Errorf("fault-free JSON differs between -backend inprocess and -backend %s", backend)
		}
	}
}

// TestRunTimeoutClassifiesSlowScenario pits -timeout against a deliberately
// slow problem (a large, long-running synthetic grid point): the scenario
// must come back classified as "timeout" in the JSON export — like
// divergence, data rather than a sweep failure.
func TestRunTimeoutClassifiesSlowScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := run(context.Background(), []string{
		// ~50 agents x 24 dims x 200k rounds is far beyond a 20ms budget,
		// and the round loop checks the deadline every iteration.
		"-filters", "mean", "-behaviors", "zero", "-n", "48", "-d", "24",
		"-rounds", "200000", "-timeout", "20ms", "-json", path, "-quiet",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		TimedOut bool   `json:"timed_out"`
		Err      string `json:"error"`
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 1 || !results[0].TimedOut {
		t.Fatalf("want one timed-out result, got %+v", results)
	}
	if results[0].Err == "" {
		t.Error("timeout result should carry a reason")
	}
}

// TestRunCancelledSweepExportsPartialResults: a cancelled CLI run must
// still export the scenarios completed so far and report the cancellation.
func TestRunCancelledSweepExportsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "out.json")
	err := run(ctx, []string{
		"-filters", "cge", "-behaviors", "zero", "-rounds", "10",
		"-json", path, "-quiet",
	}, os.Stdout)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal("cancelled run should still write the JSON export:", err)
	}
	var results []map[string]any
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 0 {
		t.Errorf("pre-cancelled run should export zero scenarios, got %d", len(results))
	}
}

// TestCoordinatorWorkerFleetMatchesLocalRun is the fleet acceptance
// guarantee at the CLI level: a coordinator plus two -worker processes must
// export byte-identical JSON to a plain local run of the same flags.
func TestCoordinatorWorkerFleetMatchesLocalRun(t *testing.T) {
	dir := t.TempDir()
	gridFlags := []string{
		"-filters", "cge,cwtm", "-behaviors", "gradient-reverse,random",
		"-f", "1,2", "-rounds", "30", "-quiet",
	}

	local := filepath.Join(dir, "local.json")
	if err := run(context.Background(),
		append(gridFlags, "-json", local), os.Stdout); err != nil {
		t.Fatal(err)
	}

	fleet := filepath.Join(dir, "fleet.json")
	addrFile := filepath.Join(dir, "addr")
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(context.Background(), append(gridFlags,
			"-coordinator", "127.0.0.1:0", "-addr-file", addrFile,
			"-lease-cells", "2", "-json", fleet), os.Stdout)
	}()
	// The coordinator writes the bound address before accepting workers.
	var addr string
	for i := 0; i < 200; i++ {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("coordinator never published its address")
	}

	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			workerDone <- run(context.Background(),
				[]string{"-worker", addr, "-quiet", "-workers", "1"}, os.Stdout)
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-workerDone; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
	if err := <-coordDone; err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("fleet export differs from the local export")
	}
}

func TestFleetModeBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-worker", "x", "-coordinator", ":0"}, os.Stdout); err == nil {
		t.Error("-worker with -coordinator should error")
	}
	if err := run(ctx, []string{"-worker", "x", "-json", "out.json"}, os.Stdout); err == nil {
		t.Error("-worker with -json should error")
	}
	if err := run(ctx, []string{"-coordinator", ":0", "-timeout", "1s"}, os.Stdout); err == nil {
		t.Error("-coordinator with -timeout should error")
	}
	if err := run(ctx, []string{"-coordinator", ":0", "-backend", "cluster"}, os.Stdout); err == nil {
		t.Error("-coordinator with a non-inprocess backend should error")
	}
	if err := run(ctx, []string{"-coordinator", ":0", "-shard", "0/2"}, os.Stdout); err == nil {
		t.Error("-coordinator with -shard should error")
	}
}

// TestRunChaosAxisFlags: the -chaos axis parses the canonical plan syntax,
// exports degraded statuses with fault counters deterministically at any
// -workers value, and malformed plans or orphaned -chaos-with-none error.
func TestRunChaosAxisFlags(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	read := func(workers string) []byte {
		t.Helper()
		path := filepath.Join(dir, "chaos-"+workers+".json")
		err := run(ctx, []string{
			"-filters", "cge", "-behaviors", "gradient-reverse", "-rounds", "15",
			"-chaos", "omit:0.2+retry:2:0.1,crash:0.3", "-chaos-with-none",
			"-workers", workers, "-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := read("1"), read("8")
	if !bytes.Equal(seq, par) {
		t.Error("chaos JSON differs between -workers 1 and -workers 8")
	}
	var results []map[string]any
	if err := json.Unmarshal(seq, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("1 filter x 3 chaos points should give 3 results, got %d", len(results))
	}
	wantChaos := map[string]bool{"": true, "omit:0.2+retry:2:0.1": true, "crash:0.3": true}
	degraded := 0
	for _, r := range results {
		key, _ := r["chaos"].(string)
		if !wantChaos[key] {
			t.Errorf("unexpected chaos identity %q", key)
		}
		if r["degraded"] == true {
			degraded++
			if r["faults"] == nil {
				t.Errorf("degraded cell %q exports no fault counters", key)
			}
		} else if key == "" && r["faults"] != nil {
			t.Errorf("fault-free cell exports fault counters")
		}
	}
	if degraded == 0 {
		t.Error("no cell degraded; the chaos axis injected nothing")
	}

	if err := run(ctx, []string{"-chaos", "omit:0.2:9"}, os.Stdout); err == nil {
		t.Error("malformed -chaos term should error")
	}
	if err := run(ctx, []string{"-chaos", "gamma:0.2"}, os.Stdout); err == nil {
		t.Error("unknown -chaos fault kind should error")
	}
	if err := run(ctx, []string{"-chaos", "omit:1.5"}, os.Stdout); err == nil {
		t.Error("out-of-range -chaos rate should error")
	}
	if err := run(ctx, []string{"-chaos-with-none"}, os.Stdout); err == nil {
		t.Error("-chaos-with-none without -chaos should error")
	}
}
