package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallGridWritesDeterministicJSON(t *testing.T) {
	dir := t.TempDir()
	read := func(workers string) []byte {
		t.Helper()
		path := filepath.Join(dir, "out-"+workers+".json")
		err := run(context.Background(), []string{
			"-filters", "cge,cwtm", "-behaviors", "gradient-reverse,random",
			"-f", "1,2", "-rounds", "30", "-workers", workers,
			"-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := read("1"), read("8")
	if !bytes.Equal(seq, par) {
		t.Error("JSON differs between -workers 1 and -workers 8")
	}
	var results []map[string]any
	if err := json.Unmarshal(seq, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 8 {
		t.Errorf("2 filters x 2 behaviors x 2 f-values should give 8 results, got %d", len(results))
	}
}

func TestRunPaperProblem(t *testing.T) {
	if err := run(context.Background(), []string{
		"-problem", "paper", "-filters", "cge", "-behaviors", "gradient-reverse",
		"-rounds", "50",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunStepSweepAndBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{
		"-filters", "cwtm", "-behaviors", "zero", "-rounds", "10", "-steps", "0.05", "-quiet",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-f", "x"}, os.Stdout); err == nil {
		t.Error("bad -f should error")
	}
	if err := run(ctx, []string{"-filters", "bogus"}, os.Stdout); err == nil {
		t.Error("unknown filter should error")
	}
	if err := run(ctx, []string{"-steps", "abc"}, os.Stdout); err == nil {
		t.Error("bad -steps should error")
	}
	if err := run(ctx, []string{"-backend", "bogus"}, os.Stdout); err == nil {
		t.Error("unknown backend should error")
	}
}

// TestRunClusterBackendMatchesInProcess: the CLI's -backend flag must not
// change the exported JSON for a fault-free grid — the backend-parity
// guarantee surfaced at the command level.
func TestRunClusterBackendMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	read := func(backend string) []byte {
		t.Helper()
		path := filepath.Join(dir, "out-"+backend+".json")
		err := run(context.Background(), []string{
			"-filters", "cge,cwtm,mean", "-f", "0", "-rounds", "40",
			"-backend", backend, "-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(read("inprocess"), read("cluster")) {
		t.Error("fault-free JSON differs between -backend inprocess and -backend cluster")
	}
}

// TestRunTimeoutClassifiesSlowScenario pits -timeout against a deliberately
// slow problem (a large, long-running synthetic grid point): the scenario
// must come back classified as "timeout" in the JSON export — like
// divergence, data rather than a sweep failure.
func TestRunTimeoutClassifiesSlowScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := run(context.Background(), []string{
		// ~50 agents x 24 dims x 200k rounds is far beyond a 20ms budget,
		// and the round loop checks the deadline every iteration.
		"-filters", "mean", "-behaviors", "zero", "-n", "48", "-d", "24",
		"-rounds", "200000", "-timeout", "20ms", "-json", path, "-quiet",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		TimedOut bool   `json:"timed_out"`
		Err      string `json:"error"`
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 1 || !results[0].TimedOut {
		t.Fatalf("want one timed-out result, got %+v", results)
	}
	if results[0].Err == "" {
		t.Error("timeout result should carry a reason")
	}
}

// TestRunCancelledSweepExportsPartialResults: a cancelled CLI run must
// still export the scenarios completed so far and report the cancellation.
func TestRunCancelledSweepExportsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "out.json")
	err := run(ctx, []string{
		"-filters", "cge", "-behaviors", "zero", "-rounds", "10",
		"-json", path, "-quiet",
	}, os.Stdout)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal("cancelled run should still write the JSON export:", err)
	}
	var results []map[string]any
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 0 {
		t.Errorf("pre-cancelled run should export zero scenarios, got %d", len(results))
	}
}
