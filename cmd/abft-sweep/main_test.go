package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallGridWritesDeterministicJSON(t *testing.T) {
	dir := t.TempDir()
	read := func(workers string) []byte {
		t.Helper()
		path := filepath.Join(dir, "out-"+workers+".json")
		err := run([]string{
			"-filters", "cge,cwtm", "-behaviors", "gradient-reverse,random",
			"-f", "1,2", "-rounds", "30", "-workers", workers,
			"-json", path, "-quiet",
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := read("1"), read("8")
	if !bytes.Equal(seq, par) {
		t.Error("JSON differs between -workers 1 and -workers 8")
	}
	var results []map[string]any
	if err := json.Unmarshal(seq, &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 8 {
		t.Errorf("2 filters x 2 behaviors x 2 f-values should give 8 results, got %d", len(results))
	}
}

func TestRunPaperProblem(t *testing.T) {
	if err := run([]string{
		"-problem", "paper", "-filters", "cge", "-behaviors", "gradient-reverse",
		"-rounds", "50",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunStepSweepAndBadFlags(t *testing.T) {
	if err := run([]string{
		"-filters", "cwtm", "-behaviors", "zero", "-rounds", "10", "-steps", "0.05", "-quiet",
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", "x"}, os.Stdout); err == nil {
		t.Error("bad -f should error")
	}
	if err := run([]string{"-filters", "bogus"}, os.Stdout); err == nil {
		t.Error("unknown filter should error")
	}
	if err := run([]string{"-steps", "abc"}, os.Stdout); err == nil {
		t.Error("bad -steps should error")
	}
}
