// Command abft-sweep runs a scenario-matrix sweep — a registered problem ×
// gradient filters × Byzantine behaviors × fault counts × system sizes —
// concurrently and prints one result row per scenario, optionally exporting
// JSON.
//
// Usage:
//
//	abft-sweep                                        # full registry grid, paper-sized synthetic instance
//	abft-sweep -problem paper -filters cge,cwtm       # the paper's Section-5 corner
//	abft-sweep -problem learning -n 10 -d 20 -f 3     # Appendix-K learning workload
//	abft-sweep -f 1,2 -n 12,24 -d 2,10 -rounds 200    # a 4-axis grid
//	abft-sweep -baseline -f 1                         # add the fault-free omit-an-agent baseline axis
//	abft-sweep -workers 8 -json results.json          # 8-way pool + deterministic JSON export
//	abft-sweep -backend cluster -timeout 30s          # serve every scenario over the cluster stack
//	abft-sweep -backend p2p -behaviors equivocate     # decentralized Byzantine-broadcast substrate
//	abft-sweep -shard 0/4 -json shard0.json           # run one deterministic quarter of the grid
//	abft-sweep -merge -json full.json s0.json s1.json # recombine shard exports byte-identically
//	abft-sweep -progress                              # live done/total reporting on stderr
//	abft-sweep -coordinator :7600 -checkpoint g.ckpt -json full.json  # serve the grid to a worker fleet
//	abft-sweep -worker host:7600                      # one fleet worker (start any number)
//	abft-sweep -async-latency uniform:0.5:1.5 -async-policy first-k:4,deadline:2 \
//	    -straggler-rate 0,0.25 -async-stale reuse-last -async-with-sync   # asynchronous round models
//	abft-sweep -chaos omit:0.2+retry:2:0.1,crash:0.3 -chaos-with-none     # deterministic fault injection
//
// -problem accepts any name in the problem registry (see byzopt.Problem /
// RegisterProblem). Scenario seeds are derived by hashing each scenario's
// key, so the results (and the JSON, unless -timings is set) are
// byte-identical at any -workers value — and, for fault-free grids, on
// every -backend. -backend p2p executes each scenario over the
// Byzantine-broadcast peer-to-peer substrate (n > 3f; cells violating the
// bound come back "skipped"), where the "equivocate" behavior additionally
// lies while relaying other peers' broadcasts — the one adversary the
// server-based substrates cannot express. Sharding slices the expanded grid
// by index range;
// because every result records its grid index, -merge reassembles shard
// exports into exactly the bytes an unsharded run would have written.
// -timeout bounds each scenario; overruns are classified as "timeout"
// results in the table and JSON rather than failing the sweep. An
// interrupt (Ctrl-C) stops the sweep within one scenario and still prints
// and exports the scenarios that completed, in grid order.
//
// -async-latency enables the asynchronous round model as a grid axis: each
// scenario's agents take virtual-time delays from the given distribution
// (fixed:BASE, uniform:MIN:WIDTH, or pareto:SCALE:SHAPE), the server closes
// each round per -async-policy (wait-all; first-k:K, partial aggregation
// over the k earliest arrivals; deadline:BUDGET, a virtual-time budget), and
// late gradients are handled per -async-stale (drop, reuse-last, weighted;
// -async-max-stale bounds reuse age). -straggler-rate designates that
// fraction of agents persistent stragglers whose every delay is multiplied
// by -straggler-factor. The straggler-rate, policy, and staleness lists
// cross with the filter axes like every other grid dimension, and
// -async-with-sync adds the synchronous round model as a reference point.
// Everything stays virtual: delays are hash-derived from each scenario's
// seed, so async sweeps keep full byte-determinism at any -workers value
// and over a -coordinator fleet.
//
// -chaos enables deterministic system-fault injection as a grid axis: each
// comma-separated plan is a '+'-joined list of fault terms — crash:RATE
// (agents stop responding from a drawn round), omit:RATE (messages dropped),
// corrupt:RATE (payloads bit-flipped in transit, detected by CRC framing and
// reclassified as omission), dup:RATE (duplicate delivery), delay:RATE:EXTRA
// (extra virtual time) — with an optional retry:ATTEMPTS:BACKOFF delivery
// budget. Cells ride out injected faults through the partial-aggregation
// machinery instead of failing: they report the "degraded" status with
// per-run fault counters in the JSON. Every injection is hash-derived from
// the cell's seed, so chaos grids keep full byte-determinism at any -workers
// value and over a -coordinator fleet. -chaos-with-none prepends the
// fault-free reference point to the axis.
//
// -coordinator serves the grid over TCP to any number of -worker processes
// instead of computing it locally: workers lease cell batches, stream
// results back, and a worker that crashes or wedges past -lease-ttl has its
// cells reassigned. With -checkpoint, completed cells persist across
// coordinator restarts and a rerun resumes the missing cells only. The
// fleet's export is byte-identical to a single-process run of the same
// flags, whatever the fleet size or failure history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"byzopt/internal/aggregate"
	"byzopt/internal/cluster"
	"byzopt/internal/dgd"
	"byzopt/internal/linreg"
	"byzopt/internal/p2p"
	"byzopt/internal/simtime"
	"byzopt/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abft-sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("abft-sweep", flag.ContinueOnError)
	var (
		problem = fs.String("problem", sweep.ProblemSynthetic,
			"workload from the problem registry: "+strings.Join(sweep.ProblemNames(), ", "))
		filters    = fs.String("filters", "all", "comma-separated filter names (fixed registry names or parameterized ones like multikrum-7, gmom-5), or all")
		behaviors  = fs.String("behaviors", "all", "comma-separated behavior names, or all")
		fvals      = fs.String("f", "1", "comma-separated fault-tolerance values")
		nvals      = fs.String("n", "", "comma-separated system sizes (default 6)")
		dims       = fs.String("d", "", "comma-separated dimensions (default 2)")
		sketchDims = fs.String("sketch-dims", "", "comma-separated approximation dimensions swept for the sketch-configurable filters (0 = filter default); other filters collapse this axis")
		steps      = fs.String("steps", "", "comma-separated constant step sizes to sweep in addition to the paper's diminishing schedule (e.g. 0.05,0.01)")
		rounds     = fs.Int("rounds", 0, "iterations per scenario (0 = paper's 500)")
		seed       = fs.Int64("seed", 0, "base seed mixed into every scenario hash")
		noise      = fs.Float64("noise", 0, "synthetic observation noise (0 = default 0.05)")
		workers    = fs.Int("workers", 0, "scenario worker pool size (0 = GOMAXPROCS)")
		dgdWorkers = fs.Int("dgd-workers", 0, "concurrent gradient collection per run (0 = sequential)")
		baseline   = fs.Bool("baseline", false, "add the fault-free omit-the-faulty-agents baseline as a grid axis")
		backend    = fs.String("backend", "inprocess", "execution substrate per scenario: inprocess, cluster, or p2p")
		timeout    = fs.Duration("timeout", 0, "per-scenario deadline; overruns become \"timeout\" results (0 = unbounded)")
		jsonPath   = fs.String("json", "", "write results JSON to this file")
		timings    = fs.Bool("timings", false, "include wall-clock times in the JSON (breaks byte-determinism)")
		quiet      = fs.Bool("quiet", false, "print only the summary line")
		progress   = fs.Bool("progress", false, "report per-scenario completion progress on stderr")
		shard      = fs.String("shard", "", "run only shard i/m of the grid, e.g. -shard 0/4")
		merge      = fs.Bool("merge", false, "merge shard JSON exports (positional args) instead of sweeping")
		coord      = fs.String("coordinator", "", "listen on this TCP address and serve the grid to -worker processes instead of sweeping locally")
		worker     = fs.String("worker", "", "lease cells from the coordinator at this address instead of sweeping locally")
		checkpoint = fs.String("checkpoint", "", "with -coordinator: record completed cells here (JSONL + atomic .snapshot) and resume an interrupted grid")
		leaseTTL   = fs.Duration("lease-ttl", 0, "with -coordinator: reassign a worker's cells if unfinished after this long (0 = 1m)")
		leaseCells = fs.Int("lease-cells", 0, "with -coordinator: cells handed out per lease (0 = 4)")
		addrFile   = fs.String("addr-file", "", "with -coordinator: write the bound listen address to this file (for :0 port discovery)")
		name       = fs.String("name", "", "with -worker: label reported to the coordinator (default: hostname)")

		asyncLatency = fs.String("async-latency", "", "enable the async round-model axis with this virtual-time latency model: fixed:BASE, uniform:MIN:WIDTH, or pareto:SCALE:SHAPE")
		asyncPolicy  = fs.String("async-policy", "wait-all", "comma-separated collection policies to sweep: wait-all, first-k:K, deadline:BUDGET")
		asyncStale   = fs.String("async-stale", "drop", "comma-separated staleness policies to sweep: drop, reuse-last, weighted")
		asyncMaxSt   = fs.Int("async-max-stale", 0, "oldest round age a stale gradient may be substituted at (0 = unbounded)")
		stragRates   = fs.String("straggler-rate", "0", "comma-separated fractions of agents designated persistent stragglers, swept as an axis")
		stragFactor  = fs.Float64("straggler-factor", 10, "delay multiplier applied to every straggler's latency")
		asyncSync    = fs.Bool("async-with-sync", false, "add the synchronous round model as a reference point on the async axis")

		chaosPlans = fs.String("chaos", "", "enable the fault-injection axis: comma-separated plans, each '+'-joined terms crash:RATE, omit:RATE, corrupt:RATE, dup:RATE, delay:RATE:EXTRA, retry:ATTEMPTS:BACKOFF (e.g. omit:0.2+retry:2:0.1)")
		chaosNone  = fs.Bool("chaos-with-none", false, "add the fault-free reference point to the chaos axis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *merge {
		return runMerge(fs.Args(), *jsonPath, *timings, *quiet, out)
	}
	if *worker != "" {
		if *coord != "" {
			return errors.New("-worker and -coordinator are mutually exclusive")
		}
		if *shard != "" || *jsonPath != "" {
			return errors.New("-worker mode takes its grid from the coordinator; -shard and -json do not apply")
		}
		wname := *name
		if wname == "" {
			wname, _ = os.Hostname()
		}
		opts := sweep.WorkerOptions{Name: wname, Workers: *workers}
		if !*quiet {
			opts.Logf = logStderr
		}
		return sweep.Work(ctx, *worker, opts)
	}

	spec := sweep.Spec{
		Problem:         *problem,
		Rounds:          *rounds,
		Seed:            *seed,
		Noise:           *noise,
		Workers:         *workers,
		DGDWorkers:      *dgdWorkers,
		ScenarioTimeout: *timeout,
	}
	if *baseline {
		spec.Baselines = []bool{false, true}
	}
	if *progress {
		spec.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "abft-sweep: %d/%d scenarios done\n", done, total)
		}
	}
	if *shard != "" {
		sh, err := parseShard(*shard)
		if err != nil {
			return err
		}
		spec.Shard = sh
	}
	switch *backend {
	case "inprocess":
		// nil Backend selects dgd.InProcess.
	case "cluster":
		spec.Backend = &cluster.Backend{}
	case "p2p":
		spec.Backend = p2p.Backend{}
	default:
		return fmt.Errorf("unknown -backend %q (want inprocess, cluster, or p2p)", *backend)
	}
	if *filters != "all" {
		spec.Filters = splitList(*filters)
		// Resolve every name now, so a typo fails at the flag with the full
		// registry listing (including the parameterized families) instead of
		// surfacing later from spec validation.
		for _, fname := range spec.Filters {
			if _, err := aggregate.New(fname); err != nil {
				return fmt.Errorf("-filters: %w", err)
			}
		}
	}
	if *behaviors != "all" {
		spec.Behaviors = splitList(*behaviors)
	}
	var err error
	if spec.FValues, err = parseInts(*fvals); err != nil {
		return fmt.Errorf("-f: %w", err)
	}
	if *nvals != "" {
		if spec.NValues, err = parseInts(*nvals); err != nil {
			return fmt.Errorf("-n: %w", err)
		}
	}
	if *dims != "" {
		if spec.Dims, err = parseInts(*dims); err != nil {
			return fmt.Errorf("-d: %w", err)
		}
	}
	if *sketchDims != "" {
		if spec.SketchDims, err = parseInts(*sketchDims); err != nil {
			return fmt.Errorf("-sketch-dims: %w", err)
		}
	}
	if *steps != "" {
		schedules := []dgd.StepSchedule{dgd.Diminishing{C: linreg.StepC, P: 1}}
		for _, tok := range splitList(*steps) {
			eta, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("-steps %q: %w", tok, err)
			}
			schedules = append(schedules, dgd.Constant{Eta: eta})
		}
		spec.Steps = schedules
	}
	if *asyncLatency == "" {
		asyncTouched := ""
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "async-policy", "async-stale", "async-max-stale", "straggler-rate", "straggler-factor", "async-with-sync":
				asyncTouched = f.Name
			}
		})
		if asyncTouched != "" {
			return fmt.Errorf("-%s needs -async-latency to enable the async axis", asyncTouched)
		}
	} else {
		if spec.Asyncs, err = buildAsyncAxis(*asyncLatency, *asyncPolicy, *asyncStale, *stragRates, *stragFactor, *asyncMaxSt, *asyncSync); err != nil {
			return err
		}
	}
	if *chaosPlans == "" {
		if *chaosNone {
			return errors.New("-chaos-with-none needs -chaos to enable the fault-injection axis")
		}
	} else {
		if spec.Chaoses, err = buildChaosAxis(*chaosPlans, *chaosNone); err != nil {
			return err
		}
	}

	var results []sweep.Result
	var runErr error
	if *coord != "" {
		if *timeout != 0 {
			return errors.New("-timeout is process-local and does not travel to -worker processes")
		}
		cs := sweep.CoordinatorSpec{
			Spec:           spec,
			LeaseTTL:       *leaseTTL,
			LeaseCells:     *leaseCells,
			CheckpointPath: *checkpoint,
		}
		if *progress {
			cs.Progress = spec.Progress
			cs.Spec.Progress = nil
		}
		if !*quiet {
			cs.Logf = logStderr
		}
		results, runErr = runCoordinator(ctx, *coord, *addrFile, cs)
	} else {
		results, runErr = sweep.RunContext(ctx, spec)
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	if !*quiet {
		fmt.Fprint(out, sweep.FormatTable(results))
	}
	fmt.Fprintln(out, sweep.Summarize(results))

	if *jsonPath != "" {
		if err := sweep.WriteJSONFile(*jsonPath, results, *timings); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	// A cancelled sweep still printed and exported its completed scenarios
	// above; surface the interruption in the exit status.
	return runErr
}

// logStderr is the default human-progress sink for fleet modes.
func logStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abft-sweep: "+format+"\n", args...)
}

// runCoordinator binds the listen address, publishes it to addrFile when
// asked (so scripts can use ":0" and discover the port), and serves the grid.
func runCoordinator(ctx context.Context, addr, addrFile string, cs sweep.CoordinatorSpec) ([]sweep.Result, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-coordinator: %w", err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("-addr-file: %w", err)
		}
	}
	return sweep.Coordinate(ctx, ln, cs)
}

// runMerge recombines shard JSON exports into the full-grid export: with
// -json it writes the merged file (byte-identical to an unsharded run of
// the same spec), otherwise it prints the merged table.
func runMerge(paths []string, jsonPath string, timings, quiet bool, out *os.File) error {
	if len(paths) == 0 {
		return errors.New("-merge needs shard JSON files as arguments")
	}
	results, err := sweep.MergeJSONFiles(paths...)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprint(out, sweep.FormatTable(results))
	}
	fmt.Fprintln(out, sweep.Summarize(results))
	if jsonPath != "" {
		if err := sweep.WriteJSONFile(jsonPath, results, timings); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %d shards into %s\n", len(paths), jsonPath)
	}
	return nil
}

// buildAsyncAxis crosses the straggler-rate, collection-policy, and
// staleness-policy lists under one latency model into the sweep's Asyncs
// axis, optionally prefixed by the synchronous reference point. Semantic
// validation (positive scales, K bounds) is the sweep's job — this only
// parses.
func buildAsyncAxis(latency, policies, stales, rates string, factor float64, maxStale int, withSync bool) ([]sweep.AsyncSpec, error) {
	base, err := parseAsyncLatency(latency)
	if err != nil {
		return nil, err
	}
	rateVals, err := parseFloats(rates)
	if err != nil {
		return nil, fmt.Errorf("-straggler-rate: %w", err)
	}
	var out []sweep.AsyncSpec
	if withSync {
		out = append(out, sweep.AsyncSpec{})
	}
	for _, rate := range rateVals {
		for _, ptok := range splitList(policies) {
			pol, k, deadline, err := parseAsyncPolicy(ptok)
			if err != nil {
				return nil, err
			}
			for _, stale := range splitList(stales) {
				a := base
				a.StragglerRate = rate
				if rate > 0 {
					a.StragglerFactor = factor
				}
				a.Policy, a.K, a.Deadline = pol, k, deadline
				a.Stale = stale
				a.MaxStale = maxStale
				out = append(out, a)
			}
		}
	}
	return out, nil
}

// buildChaosAxis parses the comma-separated chaos plan list into the
// sweep's Chaoses axis, optionally prefixed by the fault-free reference
// point. Semantic validation (rate ranges, budgets) is the sweep's job —
// this only parses.
func buildChaosAxis(plans string, withNone bool) ([]sweep.ChaosSpec, error) {
	var out []sweep.ChaosSpec
	if withNone {
		out = append(out, sweep.ChaosSpec{})
	}
	for _, tok := range splitList(plans) {
		cs, err := parseChaosSpec(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// parseChaosSpec parses one '+'-joined chaos plan — the same canonical form
// ChaosSpec.String renders, e.g. "crash:0.1+omit:0.2+retry:2:0.1".
func parseChaosSpec(s string) (sweep.ChaosSpec, error) {
	var c sweep.ChaosSpec
	for _, term := range strings.Split(s, "+") {
		parts := strings.Split(term, ":")
		bad := func() (sweep.ChaosSpec, error) {
			return sweep.ChaosSpec{}, fmt.Errorf("-chaos %q: term %q: want crash:RATE, omit:RATE, corrupt:RATE, dup:RATE, delay:RATE:EXTRA, or retry:ATTEMPTS:BACKOFF", s, term)
		}
		vals := make([]float64, 0, 2)
		for _, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return bad()
			}
			vals = append(vals, v)
		}
		switch parts[0] {
		case "crash":
			if len(vals) != 1 {
				return bad()
			}
			c.CrashRate = vals[0]
		case "omit":
			if len(vals) != 1 {
				return bad()
			}
			c.OmitRate = vals[0]
		case "corrupt":
			if len(vals) != 1 {
				return bad()
			}
			c.CorruptRate = vals[0]
		case "dup":
			if len(vals) != 1 {
				return bad()
			}
			c.DupRate = vals[0]
		case "delay":
			if len(vals) != 2 {
				return bad()
			}
			c.DelayRate, c.Delay = vals[0], vals[1]
		case "retry":
			if len(vals) != 2 || vals[0] != float64(int(vals[0])) {
				return bad()
			}
			c.Attempts, c.RetryDelay = int(vals[0]), vals[1]
		default:
			return bad()
		}
	}
	return c, nil
}

// parseAsyncLatency parses fixed:BASE, uniform:MIN:WIDTH, or
// pareto:SCALE:SHAPE into the latency fields of an AsyncSpec.
func parseAsyncLatency(s string) (sweep.AsyncSpec, error) {
	parts := strings.Split(s, ":")
	bad := func() (sweep.AsyncSpec, error) {
		return sweep.AsyncSpec{}, fmt.Errorf("-async-latency %q: want fixed:BASE, uniform:MIN:WIDTH, or pareto:SCALE:SHAPE", s)
	}
	var vals []float64
	for _, p := range parts[1:] {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return bad()
		}
		vals = append(vals, v)
	}
	a := sweep.AsyncSpec{Latency: parts[0]}
	switch parts[0] {
	case simtime.LatencyFixed:
		if len(vals) != 1 {
			return bad()
		}
		a.Base = vals[0]
	case simtime.LatencyUniform:
		if len(vals) != 2 {
			return bad()
		}
		a.Base, a.Spread = vals[0], vals[1]
	case simtime.LatencyPareto:
		if len(vals) != 2 {
			return bad()
		}
		a.Base, a.Alpha = vals[0], vals[1]
	default:
		return bad()
	}
	return a, nil
}

// parseAsyncPolicy parses wait-all, first-k:K, or deadline:BUDGET.
func parseAsyncPolicy(s string) (policy string, k int, deadline float64, err error) {
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case dgd.CollectWaitAll:
		if hasArg {
			return "", 0, 0, fmt.Errorf("-async-policy %q: wait-all takes no argument", s)
		}
	case dgd.CollectFirstK:
		if !hasArg {
			return "", 0, 0, fmt.Errorf("-async-policy %q: want first-k:K", s)
		}
		if k, err = strconv.Atoi(arg); err != nil {
			return "", 0, 0, fmt.Errorf("-async-policy %q: %w", s, err)
		}
	case dgd.CollectDeadline:
		if !hasArg {
			return "", 0, 0, fmt.Errorf("-async-policy %q: want deadline:BUDGET", s)
		}
		if deadline, err = strconv.ParseFloat(arg, 64); err != nil {
			return "", 0, 0, fmt.Errorf("-async-policy %q: %w", s, err)
		}
	default:
		return "", 0, 0, fmt.Errorf("-async-policy %q: want wait-all, first-k:K, or deadline:BUDGET", s)
	}
	return name, k, deadline, nil
}

// parseShard parses "i/m" into a sweep.Shard.
func parseShard(s string) (*sweep.Shard, error) {
	idx := strings.IndexByte(s, '/')
	if idx < 0 {
		return nil, fmt.Errorf("-shard %q: want i/m, e.g. 0/4", s)
	}
	i, err := strconv.Atoi(s[:idx])
	if err != nil {
		return nil, fmt.Errorf("-shard %q: %w", s, err)
	}
	m, err := strconv.Atoi(s[idx+1:])
	if err != nil {
		return nil, fmt.Errorf("-shard %q: %w", s, err)
	}
	if m < 1 || i < 0 || i >= m {
		return nil, fmt.Errorf("-shard %q: need 0 <= i < m", s)
	}
	return &sweep.Shard{Index: i, Count: m}, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range splitList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range splitList(s) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
