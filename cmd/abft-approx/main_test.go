package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsSchema drives the command end to end on a small instance and
// checks the artifact schema.
func TestRunEmitsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-n", "12", "-d", "16", "-f", "1", "-rounds", "5", "-sketch-dim", "4", "-pairs", "4", "-seed", "9"}
	if err := run(args, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rep.Schema != "byzopt-approx/1" {
		t.Errorf("schema %q, want byzopt-approx/1", rep.Schema)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("%d rows, want 4", len(rep.Rows))
	}
	if rep.Config.N != 12 || rep.Config.SketchDim != 4 {
		t.Errorf("config not echoed: %+v", rep.Config)
	}
}

// TestRunRejectsBadConfig: an infeasible f must surface as an error, not a
// malformed artifact.
func TestRunRejectsBadConfig(t *testing.T) {
	out, err := os.Create(filepath.Join(t.TempDir(), "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = out.Close() }()
	if err := run([]string{"-n", "9", "-f", "3"}, out); err == nil {
		t.Error("n=9 f=3 must be rejected (n <= 3f)")
	}
}
