// Command abft-approx compares the exact distance-based filters against
// their sub-quadratic approximate variants (JL-sketched and sampled-pairs)
// on a synthetic Byzantine least-squares workload, and emits a JSON report
// of the selection-agreement rate and final-cost delta per pair.
//
// The report is deterministic for a fixed flag set: the workload, the
// adversary, and the approximate filters' draws are all derived from -seed.
//
// Examples:
//
//	abft-approx
//	abft-approx -n 50 -d 1000 -f 5 -rounds 60 -sketch-dim 64 -pairs 16
//	abft-approx -behavior random -seed 3 > approx.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"byzopt/internal/experiments"
)

// report is the artifact schema: config echoed back plus one row per
// exact/approximate pair.
type report struct {
	Schema string                     `json:"schema"`
	Config experiments.ApproxConfig   `json:"config"`
	Rows   []experiments.ApproxResult `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abft-approx:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("abft-approx", flag.ContinueOnError)
	n := fs.Int("n", 50, "agents")
	d := fs.Int("d", 1000, "dimension")
	f := fs.Int("f", 5, "Byzantine budget f")
	rounds := fs.Int("rounds", 60, "D-GD rounds")
	sketchDim := fs.Int("sketch-dim", 64, "projection dimension k of the sketched filters")
	pairs := fs.Int("pairs", 16, "neighbor sample size m of the sampled filters")
	behavior := fs.String("behavior", "gradient-reverse", "byzantine behavior name")
	seed := fs.Int64("seed", 20260807, "workload and filter seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.ApproxConfig{
		N: *n, Dim: *d, F: *f, Rounds: *rounds,
		SketchDim: *sketchDim, SamplePairs: *pairs,
		Behavior: *behavior, Seed: *seed,
	}
	rows, err := experiments.ApproxComparison(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Schema: "byzopt-approx/1", Config: cfg, Rows: rows})
}
