package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsSchema drives the soak end to end on a small grid and checks
// the artifact schema: one curve per filter, rates in order with the
// fault-free reference prepended, degraded cells carrying fault tallies.
func TestRunEmitsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-filters", "cge,cwtm", "-rounds", "15", "-rates", "0.2", "-fault", "omit", "-json"}
	if err := run(args, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rep.Schema != "byzopt-chaos/1" {
		t.Errorf("schema %q, want byzopt-chaos/1", rep.Schema)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row.Curve) != 2 {
			t.Fatalf("filter %s: %d curve points, want 2 (reference prepended)", row.Filter, len(row.Curve))
		}
		ref, faulted := row.Curve[0], row.Curve[1]
		if ref.Rate != 0 || ref.Chaos != "" || ref.Faults != nil {
			t.Errorf("filter %s: malformed reference point %+v", row.Filter, ref)
		}
		if faulted.Rate != 0.2 || faulted.Chaos != "omit:0.2" {
			t.Errorf("filter %s: malformed faulted point %+v", row.Filter, faulted)
		}
		if faulted.Status == "degraded" && (faulted.Faults == nil || faulted.CostRatio <= 0) {
			t.Errorf("filter %s: degraded point missing tally or ratio: %+v", row.Filter, faulted)
		}
	}
}

// TestRunTableAndDeterminism: the default table renders, and the JSON
// artifact is byte-identical across reruns of the same flags.
func TestRunTableAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	emit := func(name string, args []string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(args, out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	jsonArgs := []string{"-filters", "cge", "-rounds", "10", "-rates", "0.1", "-json"}
	a := emit("a.json", jsonArgs)
	b := emit("b.json", jsonArgs)
	if string(a) != string(b) {
		t.Error("soak artifact differs across reruns of the same flags")
	}
	table := emit("table.txt", []string{"-filters", "cge", "-rounds", "10", "-rates", "0.1"})
	if len(table) == 0 {
		t.Error("table mode produced no output")
	}
}

// TestRunRejectsBadFlags: unknown fault kinds and malformed rates surface as
// errors, not malformed artifacts.
func TestRunRejectsBadFlags(t *testing.T) {
	out, err := os.Create(filepath.Join(t.TempDir(), "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = out.Close() }()
	if err := run([]string{"-fault", "gamma-ray"}, out); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if err := run([]string{"-rates", "0.1,zap"}, out); err == nil {
		t.Error("malformed rate list accepted")
	}
	if err := run([]string{"-fault", "omit", "-rates", "1.5"}, out); err == nil {
		t.Error("out-of-range rate accepted")
	}
}
