// Command abft-chaos soaks the gradient filters under deterministic system
// faults: it runs a filter × fault-rate grid on the sweep engine's chaos
// axis and reports one cost-vs-fault-rate degradation curve per filter,
// normalized against each filter's fault-free reference cell.
//
// The soak is deterministic for a fixed flag set: the workload, the
// Byzantine adversary, and every injected fault are pure functions of -seed,
// so reruns reproduce the report bit for bit.
//
// Examples:
//
//	abft-chaos
//	abft-chaos -fault crash -rates 0,0.1,0.3
//	abft-chaos -fault omit -rates 0,0.1,0.25 -attempts 2 -retry-delay 0.1
//	abft-chaos -filters cge,cwtm -behavior random -rounds 200 -json > soak.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"byzopt/internal/experiments"
)

// report is the artifact schema: config echoed back plus one degradation
// curve per filter.
type report struct {
	Schema string                      `json:"schema"`
	Config experiments.ChaosSoakConfig `json:"config"`
	Rows   []experiments.ChaosSoakRow  `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abft-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("abft-chaos", flag.ContinueOnError)
	problem := fs.String("problem", "", "workload from the problem registry (default synthetic)")
	filters := fs.String("filters", "", "comma-separated filter panel (default cge,cwtm,bulyan)")
	behavior := fs.String("behavior", "", "byzantine behavior run alongside the system faults (default gradient-reverse)")
	f := fs.Int("f", 0, "Byzantine budget f (default 1)")
	n := fs.Int("n", 0, "system size (default: sweep default)")
	rounds := fs.Int("rounds", 0, "D-GD rounds per cell (default 100)")
	fault := fs.String("fault", "", "system-fault kind to sweep: "+strings.Join(experiments.ChaosFaultKinds, ", ")+" (default omit)")
	rates := fs.String("rates", "", "comma-separated fault rates; 0 is added as the reference point when absent (default 0,0.05,0.1,0.2)")
	attempts := fs.Int("attempts", 0, "per-message delivery attempts on faulted cells (0 = 1: no retry)")
	retryDelay := fs.Float64("retry-delay", 0, "virtual-time backoff per retry attempt")
	delay := fs.Float64("delay", 0, "extra virtual time per delayed message with -fault delay (default 1)")
	seed := fs.Int64("seed", 0, "base seed mixed into every cell hash")
	workers := fs.Int("workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit the JSON report instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.ChaosSoakConfig{
		Problem:    *problem,
		Behavior:   *behavior,
		F:          *f,
		N:          *n,
		Rounds:     *rounds,
		Fault:      *fault,
		Attempts:   *attempts,
		RetryDelay: *retryDelay,
		Delay:      *delay,
		Seed:       *seed,
		Workers:    *workers,
	}
	if *filters != "" {
		cfg.Filters = splitList(*filters)
	}
	if *rates != "" {
		var err error
		if cfg.Rates, err = parseFloats(*rates); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	}
	rows, err := experiments.ChaosSoak(cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report{Schema: "byzopt-chaos/1", Config: cfg, Rows: rows})
	}
	printTable(out, rows)
	return nil
}

// printTable renders the curves as one row per filter × rate, with the
// normalized cost ratio and the injected-fault tally.
func printTable(out *os.File, rows []experiments.ChaosSoakRow) {
	fmt.Fprintf(out, "%-14s %8s %10s %10s %-10s %s\n",
		"FILTER", "RATE", "DIST", "COST_X", "STATUS", "FAULTS")
	for _, row := range rows {
		for _, pt := range row.Curve {
			faults := "-"
			if pt.Faults != nil {
				faults = fmt.Sprintf("crash=%d omit=%d corrupt=%d dup=%d delay=%d retry=%d lost=%d",
					pt.Faults.Crashed, pt.Faults.Omitted, pt.Faults.Corrupted,
					pt.Faults.Duplicated, pt.Faults.Delayed, pt.Faults.Retried, pt.Faults.LostRounds)
			}
			cost := "-"
			if pt.CostRatio > 0 {
				cost = fmt.Sprintf("%.3f", pt.CostRatio)
			}
			fmt.Fprintf(out, "%-14s %8.3g %10.4f %10s %-10s %s\n",
				row.Filter, pt.Rate, pt.FinalDist, cost, pt.Status, faults)
		}
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range splitList(s) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
