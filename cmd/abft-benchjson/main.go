// Command abft-benchjson converts `go test -bench` output into the repo's
// committed bench-trajectory schema: one JSON document, "byzopt-bench/1",
// with ns/op, B/op, allocs/op, and any custom b.ReportMetric units per
// benchmark, in input order. CI runs the seq-vs-par benchmark suite with
// -benchtime 1x and uploads the converted BENCH_pr4.json as the build's
// bench-trajectory artifact, so every PR leaves a machine-readable
// performance record.
//
// Input on stdin is either the raw text of `go test -bench` or the
// test2json stream of `go test -bench -json` (benchmark result lines are
// extracted from the events' Output fields); output is the JSON document on
// stdout. The command exits nonzero when no benchmark results are found, so
// a misconfigured CI step cannot upload an empty trajectory.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 1x -benchmem -json ./... | abft-benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema identifies the output document format.
const Schema = "byzopt-bench/1"

// Benchmark is one converted benchmark result.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkKrumScores/n=50/d=1000/workers=8-16".
	Name string `json:"name"`
	// Iterations is the measured iteration count (1 under -benchtime 1x).
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are the standard metrics;
	// BytesPerOp/AllocsPerOp require -benchmem and are omitted otherwise.
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries any custom b.ReportMetric units (final_dist,
	// checksum, ...), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full converted output.
type Document struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc, err := Convert(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abft-benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "abft-benchjson:", err)
		os.Exit(1)
	}
}

// event is the subset of the test2json record the converter consumes. Test
// carries the benchmark name for result lines the test runner printed
// without one (under -json, only the first sub-benchmark of a run gets its
// name and result in a single output line; the rest arrive as bare
// "<iterations>\t<metrics>" outputs attributed via the Test field).
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// Convert reads benchmark output (raw or test2json) and builds the
// document. It fails when the input yields no benchmark results at all —
// the converted file must be populated to be worth uploading.
//
// Benchmarks whose canonical name repeats are recorded once, keeping the
// first measurement: the test runner disambiguates same-named runs with a
// "#01" suffix (e.g. a workers axis of {1, GOMAXPROCS} on a single-core
// machine emits both "…/workers=1" and "…/workers=1#01"), and a trajectory
// keyed by name must not carry two rows for one configuration.
func Convert(r io.Reader) (*Document, error) {
	doc := &Document{Schema: Schema}
	seen := make(map[string]bool)
	add := func(b Benchmark) {
		b.Name = canonicalName(b.Name)
		if seen[b.Name] {
			return
		}
		seen[b.Name] = true
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			if b, ok := parseBenchLine(line); ok {
				add(b)
				continue
			}
			// Name-less result line: re-attach the name the event carries.
			if ev.Test != "" {
				if b, ok := parseBenchLine(ev.Test + "\t" + line); ok {
					add(b)
				}
			}
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			add(b)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results in input")
	}
	return doc, nil
}

// canonicalName strips the "#NN" duplicate-run counters the test runner
// inserts after any path segment when a benchmark name repeats, so
// re-measurements of the same configuration collapse onto one key.
func canonicalName(name string) string {
	if !strings.Contains(name, "#") {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name))
	for i := 0; i < len(name); {
		if name[i] == '#' {
			j := i + 1
			for j < len(name) && name[j] >= '0' && name[j] <= '9' {
				j++
			}
			if j > i+1 {
				i = j
				continue
			}
		}
		sb.WriteByte(name[i])
		i++
	}
	return sb.String()
}

// parseBenchLine parses one benchmark result line,
//
//	BenchmarkName-8   <iterations>   <value> <unit>   <value> <unit> ...
//
// returning ok = false for anything else (PASS lines, goos headers, test
// logs).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iterations, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iterations}
	seenNs := false
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = value
			seenNs = true
		case "B/op":
			v := value
			b.BytesPerOp = &v
		case "allocs/op":
			v := value
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = value
		}
	}
	if !seenNs {
		return Benchmark{}, false
	}
	return b, true
}
