package main

import (
	"strings"
	"testing"
)

const rawSample = `goos: linux
goarch: amd64
pkg: byzopt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCollectGradients/n=10/d=10/workers=1-8         	      12	  95812345 ns/op	    1024 B/op	      17 allocs/op
BenchmarkP2PSweep/workers=1-8                           	       1	  34031337 ns/op	19072496 B/op	  660840 allocs/op
BenchmarkAblationFilters/cge-8                          	       5	   2000000 ns/op	         0.0123 final_dist	     512 B/op	       9 allocs/op
PASS
ok  	byzopt	1.234s
`

func TestConvertRawBenchOutput(t *testing.T) {
	doc, err := Convert(strings.NewReader(rawSample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Errorf("schema %q", doc.Schema)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkCollectGradients/n=10/d=10/workers=1-8" ||
		first.Iterations != 12 || first.NsPerOp != 95812345 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if first.BytesPerOp == nil || *first.BytesPerOp != 1024 ||
		first.AllocsPerOp == nil || *first.AllocsPerOp != 17 {
		t.Errorf("benchmem metrics mis-parsed: %+v", first)
	}
	ablation := doc.Benchmarks[2]
	if ablation.Metrics["final_dist"] != 0.0123 {
		t.Errorf("custom metric lost: %+v", ablation)
	}
}

func TestConvertTest2JSONStream(t *testing.T) {
	stream := `{"Action":"start","Package":"byzopt"}
{"Action":"output","Package":"byzopt","Output":"goos: linux\n"}
{"Action":"output","Package":"byzopt","Output":"BenchmarkForEachSubset/n=22/k=11/workers=1-8         \t       1\t   9880549 ns/op\t     176 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"byzopt","Output":"PASS\n"}
{"Action":"pass","Package":"byzopt"}
`
	doc, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkForEachSubset/n=22/k=11/workers=1-8" || b.NsPerOp != 9880549 {
		t.Errorf("mis-parsed: %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("allocs lost: %+v", b)
	}
}

// TestConvertTest2JSONSplitNameResult covers the stream shape the test
// runner actually emits for all but the first sub-benchmark of a run: the
// name arrives in one output event (and in every event's Test field) while
// the result line arrives bare. Dropping these silently truncated the PR4
// trajectory; the Test field re-attaches them.
func TestConvertTest2JSONSplitNameResult(t *testing.T) {
	stream := `{"Action":"run","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=into"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=into","Output":"BenchmarkRoundLoop/n=10/path=into                \t       1\t     37871 ns/op\t    3168 B/op\t      28 allocs/op\n"}
{"Action":"run","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc","Output":"BenchmarkRoundLoop/n=10/path=alloc \n"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc","Output":"       1\t     37307 ns/op\t   12176 B/op\t     135 allocs/op\n"}
{"Action":"output","Package":"byzopt","Output":"PASS\n"}
`
	doc, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	if doc.Benchmarks[0].Name != "BenchmarkRoundLoop/n=10/path=into" {
		t.Errorf("first name mis-parsed: %+v", doc.Benchmarks[0])
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkRoundLoop/n=10/path=alloc" || b.NsPerOp != 37307 {
		t.Errorf("split result mis-parsed: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 12176 || b.AllocsPerOp == nil || *b.AllocsPerOp != 135 {
		t.Errorf("split result lost -benchmem metrics: %+v", b)
	}
}

func TestConvertRejectsEmptyInput(t *testing.T) {
	if _, err := Convert(strings.NewReader("PASS\nok byzopt 0.1s\n")); err == nil {
		t.Error("want an error for input without benchmark results")
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"Benchmark 1", // too few fields
		"BenchmarkNoNs-8 	 5 	 12 widgets/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted noise line %q", line)
		}
	}
}
