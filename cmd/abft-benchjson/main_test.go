package main

import (
	"strings"
	"testing"
)

const rawSample = `goos: linux
goarch: amd64
pkg: byzopt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCollectGradients/n=10/d=10/workers=1-8         	      12	  95812345 ns/op	    1024 B/op	      17 allocs/op
BenchmarkP2PSweep/workers=1-8                           	       1	  34031337 ns/op	19072496 B/op	  660840 allocs/op
BenchmarkAblationFilters/cge-8                          	       5	   2000000 ns/op	         0.0123 final_dist	     512 B/op	       9 allocs/op
PASS
ok  	byzopt	1.234s
`

func TestConvertRawBenchOutput(t *testing.T) {
	doc, err := Convert(strings.NewReader(rawSample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Errorf("schema %q", doc.Schema)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkCollectGradients/n=10/d=10/workers=1-8" ||
		first.Iterations != 12 || first.NsPerOp != 95812345 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if first.BytesPerOp == nil || *first.BytesPerOp != 1024 ||
		first.AllocsPerOp == nil || *first.AllocsPerOp != 17 {
		t.Errorf("benchmem metrics mis-parsed: %+v", first)
	}
	ablation := doc.Benchmarks[2]
	if ablation.Metrics["final_dist"] != 0.0123 {
		t.Errorf("custom metric lost: %+v", ablation)
	}
}

func TestConvertTest2JSONStream(t *testing.T) {
	stream := `{"Action":"start","Package":"byzopt"}
{"Action":"output","Package":"byzopt","Output":"goos: linux\n"}
{"Action":"output","Package":"byzopt","Output":"BenchmarkForEachSubset/n=22/k=11/workers=1-8         \t       1\t   9880549 ns/op\t     176 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"byzopt","Output":"PASS\n"}
{"Action":"pass","Package":"byzopt"}
`
	doc, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkForEachSubset/n=22/k=11/workers=1-8" || b.NsPerOp != 9880549 {
		t.Errorf("mis-parsed: %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("allocs lost: %+v", b)
	}
}

// TestConvertTest2JSONSplitNameResult covers the stream shape the test
// runner actually emits for all but the first sub-benchmark of a run: the
// name arrives in one output event (and in every event's Test field) while
// the result line arrives bare. Dropping these silently truncated the PR4
// trajectory; the Test field re-attaches them.
func TestConvertTest2JSONSplitNameResult(t *testing.T) {
	stream := `{"Action":"run","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=into"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=into","Output":"BenchmarkRoundLoop/n=10/path=into                \t       1\t     37871 ns/op\t    3168 B/op\t      28 allocs/op\n"}
{"Action":"run","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc","Output":"BenchmarkRoundLoop/n=10/path=alloc \n"}
{"Action":"output","Package":"byzopt","Test":"BenchmarkRoundLoop/n=10/path=alloc","Output":"       1\t     37307 ns/op\t   12176 B/op\t     135 allocs/op\n"}
{"Action":"output","Package":"byzopt","Output":"PASS\n"}
`
	doc, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	if doc.Benchmarks[0].Name != "BenchmarkRoundLoop/n=10/path=into" {
		t.Errorf("first name mis-parsed: %+v", doc.Benchmarks[0])
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkRoundLoop/n=10/path=alloc" || b.NsPerOp != 37307 {
		t.Errorf("split result mis-parsed: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 12176 || b.AllocsPerOp == nil || *b.AllocsPerOp != 135 {
		t.Errorf("split result lost -benchmem metrics: %+v", b)
	}
}

// TestConvertDeduplicatesRepeatedNames covers the single-core-runner shape
// that produced duplicate trajectory rows: a workers axis of
// {1, GOMAXPROCS} collapses to {1, 1} when GOMAXPROCS is 1, and the test
// runner emits the second run as "…/workers=1#01". The converter must keep
// one row per canonical configuration, first measurement winning.
func TestConvertDeduplicatesRepeatedNames(t *testing.T) {
	raw := `BenchmarkKrumScores/n=50/d=1000/workers=1-1     	       1	  11111111 ns/op	     100 B/op	       2 allocs/op
BenchmarkKrumScores/n=50/d=1000/workers=1#01-1  	       1	  22222222 ns/op	     200 B/op	       4 allocs/op
BenchmarkKrumScores/n=50/d=1000/workers=8-1     	       1	  33333333 ns/op	     300 B/op	       6 allocs/op
`
	doc, err := Convert(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (duplicate dropped): %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkKrumScores/n=50/d=1000/workers=1-1" || first.NsPerOp != 11111111 {
		t.Errorf("first measurement must win: %+v", first)
	}
	if doc.Benchmarks[1].Name != "BenchmarkKrumScores/n=50/d=1000/workers=8-1" {
		t.Errorf("distinct configuration lost: %+v", doc.Benchmarks[1])
	}
}

func TestCanonicalName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX/workers=1-8":        "BenchmarkX/workers=1-8",
		"BenchmarkX/workers=1#01-8":     "BenchmarkX/workers=1-8",
		"BenchmarkX/a#12/b=2#03-16":     "BenchmarkX/a/b=2-16",
		"BenchmarkX/note=#hash-8":       "BenchmarkX/note=#hash-8", // '#' not followed by digits survives
		"BenchmarkKrumScores/n=50#01-1": "BenchmarkKrumScores/n=50-1",
	} {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConvertRejectsEmptyInput(t *testing.T) {
	if _, err := Convert(strings.NewReader("PASS\nok byzopt 0.1s\n")); err == nil {
		t.Error("want an error for input without benchmark results")
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"Benchmark 1", // too few fields
		"BenchmarkNoNs-8 	 5 	 12 widgets/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted noise line %q", line)
		}
	}
}
