// Command abft-agent runs one agent of the server-based architecture: it
// dials the server (cmd/abft-server), introduces itself, and answers
// gradient requests until shut down.
//
// The agent's local cost is a single regression observation (B_i - A_i x)^2
// given via -row/-b, or the Appendix-J paper row selected by -id when
// -paper is set. A Byzantine agent is simulated with -fault.
//
// Examples:
//
//	abft-agent -connect :7000 -id 2 -paper
//	abft-agent -connect :7000 -id 0 -paper -fault gradient-reverse
//	abft-agent -connect :7000 -id 3 -row 0.5,0.8 -b 1.3376
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"byzopt/internal/byzantine"
	"byzopt/internal/costfunc"
	"byzopt/internal/dgd"
	"byzopt/internal/linreg"
	"byzopt/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abft-agent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("abft-agent", flag.ContinueOnError)
	connect := fs.String("connect", "127.0.0.1:7000", "server address")
	id := fs.Int("id", 0, "agent index (0-based)")
	paper := fs.Bool("paper", false, "use the Appendix-J regression row for this id")
	rowFlag := fs.String("row", "", "comma-separated design row A_i")
	bFlag := fs.Float64("b", 0, "response B_i")
	fault := fs.String("fault", "", "Byzantine behavior (empty = honest; see byzopt.BehaviorNames)")
	seed := fs.Int64("seed", 42, "seed for randomized faults")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		row []float64
		b   float64
		err error
	)
	switch {
	case *paper:
		rows := linreg.A()
		if *id < 0 || *id >= len(rows) {
			return fmt.Errorf("-paper id %d out of [0, %d)", *id, len(rows))
		}
		row = rows[*id]
		b = linreg.B()[*id]
	case *rowFlag != "":
		row, err = parseVector(*rowFlag)
		if err != nil {
			return fmt.Errorf("parsing -row: %w", err)
		}
		b = *bFlag
	default:
		return fmt.Errorf("either -paper or -row is required")
	}

	cost, err := costfunc.NewSingleRowLeastSquares(row, b)
	if err != nil {
		return err
	}
	agent, err := dgd.NewHonest(cost)
	if err != nil {
		return err
	}
	if *fault != "" {
		behavior, err := byzantine.New(*fault, *seed)
		if err != nil {
			return err
		}
		agent, err = dgd.NewFaulty(agent, behavior)
		if err != nil {
			return err
		}
		fmt.Printf("agent %d: BYZANTINE (%s)\n", *id, behavior.Name())
	} else {
		fmt.Printf("agent %d: honest, row %v, b %v\n", *id, row, b)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := transport.ServeAgent(ctx, *connect, *id, agent); err != nil {
		return err
	}
	fmt.Printf("agent %d: done\n", *id)
	return nil
}

func parseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
