package main

import "testing"

func TestParseVector(t *testing.T) {
	v, err := parseVector("0.8,0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 || v[0] != 0.8 || v[1] != 0.5 {
		t.Fatalf("parsed %v", v)
	}
	if _, err := parseVector("x"); err == nil {
		t.Error("bad vector should error")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -paper/-row should error")
	}
	if err := run([]string{"-paper", "-id", "99"}); err == nil {
		t.Error("out-of-range paper id should error")
	}
	if err := run([]string{"-row", "bogus"}); err == nil {
		t.Error("bad row should error")
	}
	if err := run([]string{"-row", "1,0", "-b", "1", "-fault", "nope"}); err == nil {
		t.Error("unknown fault should error")
	}
}
