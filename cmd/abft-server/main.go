// Command abft-server runs the trusted server of the paper's server-based
// architecture (Figure 1, left) over real TCP sockets. It waits for n
// agents (see cmd/abft-agent), then drives the synchronous DGD protocol
// with the chosen gradient filter and prints the final estimate.
//
// Example (six agents on the Appendix-J regression, one Byzantine):
//
//	abft-server -listen :7000 -n 6 -f 1 -filter cge -rounds 500 -dim 2
//	for i in $(seq 0 5); do abft-agent -connect :7000 -id $i -paper & done
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"byzopt/internal/aggregate"
	"byzopt/internal/cluster"
	"byzopt/internal/dgd"
	"byzopt/internal/transport"
	"byzopt/internal/vecmath"
)

func main() {
	// An interrupt cancels the protocol run between rounds instead of
	// killing the process mid-broadcast.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abft-server:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("abft-server", flag.ContinueOnError)
	listen := fs.String("listen", ":7000", "address to listen on")
	n := fs.Int("n", 6, "number of agents to wait for")
	f := fs.Int("f", 1, "Byzantine fault budget")
	filterName := fs.String("filter", "cge", "gradient filter (see byzopt.FilterNames)")
	rounds := fs.Int("rounds", 500, "iterations to run")
	dim := fs.Int("dim", 2, "optimization dimension")
	x0Flag := fs.String("x0", "", "comma-separated initial estimate (default zeros)")
	stepC := fs.Float64("step", 1.5, "diminishing step coefficient c in c/(t+1)")
	boxR := fs.Float64("box", 1000, "projection box radius (0 disables)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-round agent deadline")
	accept := fs.Duration("accept", 60*time.Second, "agent connection window")
	if err := fs.Parse(args); err != nil {
		return err
	}

	filter, err := aggregate.New(*filterName)
	if err != nil {
		return err
	}
	x0 := vecmath.Zeros(*dim)
	if *x0Flag != "" {
		x0, err = parseVector(*x0Flag)
		if err != nil {
			return fmt.Errorf("parsing -x0: %w", err)
		}
		if len(x0) != *dim {
			return fmt.Errorf("-x0 has %d coordinates, -dim is %d", len(x0), *dim)
		}
	}
	var box *vecmath.Box
	if *boxR > 0 {
		box, err = vecmath.NewCube(*dim, *boxR)
		if err != nil {
			return err
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	fmt.Printf("listening on %s, waiting for %d agents...\n", l.Addr(), *n)

	conns, err := transport.AcceptAgents(l, *n, *accept)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	fmt.Printf("all %d agents connected; running %d rounds with filter %s (f = %d)\n",
		*n, *rounds, filter.Name(), *f)

	srv, err := cluster.NewServer(cluster.Config{
		Conns:        conns,
		F:            *f,
		Filter:       filter,
		Steps:        dgd.Diminishing{C: *stepC, P: 1},
		Box:          box,
		X0:           x0,
		Rounds:       *rounds,
		RoundTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	res, err := srv.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("final estimate: %v\n", formatVector(res.X))
	if len(res.Eliminated) > 0 {
		fmt.Printf("eliminated agents (step S1): %v; final n=%d f=%d\n",
			res.Eliminated, res.FinalN, res.FinalF)
	}
	return nil
}

func parseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func formatVector(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', 6, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
