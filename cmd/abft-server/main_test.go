package main

import (
	"context"
	"testing"
)

func TestParseVector(t *testing.T) {
	v, err := parseVector("1.5, -2, 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[0] != 1.5 || v[1] != -2 || v[2] != 0 {
		t.Fatalf("parsed %v", v)
	}
	if _, err := parseVector("1,abc"); err == nil {
		t.Error("bad coordinate should error")
	}
}

func TestFormatVector(t *testing.T) {
	got := formatVector([]float64{1.5, -2})
	if got != "(1.5, -2)" {
		t.Fatalf("formatted %q", got)
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-filter", "bogus"}); err == nil {
		t.Error("unknown filter should error")
	}
	if err := run(ctx, []string{"-x0", "1,2,3", "-dim", "2"}); err == nil {
		t.Error("x0/dim mismatch should error")
	}
	if err := run(ctx, []string{"-x0", "1,zz", "-dim", "2"}); err == nil {
		t.Error("unparseable x0 should error")
	}
}
