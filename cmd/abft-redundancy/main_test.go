package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "agents.csv")
	content := "# comment line\n1,0,0.9108\n0.8,0.5,1.3349\n\n0.5,0.8,1.3376\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	rows, b, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(b) != 3 {
		t.Fatalf("rows=%d responses=%d", len(rows), len(b))
	}
	if rows[1][0] != 0.8 || rows[1][1] != 0.5 || b[1] != 1.3349 {
		t.Fatalf("row 1 = %v, b = %v", rows[1], b[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	short := filepath.Join(dir, "short.csv")
	if err := os.WriteFile(short, []byte("1\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readCSV(short); err == nil {
		t.Error("single-field line should error")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,abc\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readCSV(bad); err == nil {
		t.Error("non-numeric field should error")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readCSV(empty); err == nil {
		t.Error("empty file should error")
	}
}

func TestRunPaperInstance(t *testing.T) {
	if err := run([]string{"-paper", "-f", "1"}); err != nil {
		t.Fatalf("run -paper: %v", err)
	}
	if err := run([]string{"-paper", "-f", "3"}); err == nil {
		t.Error("infeasible f should error")
	}
	if err := run(nil); err == nil {
		t.Error("missing input should error")
	}
}
