// Command abft-redundancy measures the (2f, ε)-redundancy of a distributed
// regression instance (Definition 3, via the Appendix J.2 enumeration) and
// reports the derived constants and resilience bounds.
//
// Input is either the paper's Appendix-J instance (-paper) or a CSV file
// (-data) with one agent per line: the design row followed by the response,
// e.g. "0.8,0.5,1.3349".
//
// The subset enumeration is chunked across -workers goroutines (0
// auto-sizes to the instance); the measured report is bitwise-identical at
// any worker count.
//
// Examples:
//
//	abft-redundancy -paper
//	abft-redundancy -data agents.csv -f 2
//	abft-redundancy -data agents.csv -f 2 -workers -1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"byzopt/internal/core"
	"byzopt/internal/linreg"
	"byzopt/internal/matrix"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abft-redundancy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("abft-redundancy", flag.ContinueOnError)
	paper := fs.Bool("paper", false, "use the Appendix-J instance")
	data := fs.String("data", "", "CSV file, one agent per line: row..., response")
	f := fs.Int("f", 1, "Byzantine budget f")
	workers := fs.Int("workers", 0, "goroutines for the subset enumeration (0 = auto, -1 = GOMAXPROCS); the report is identical at any value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		rows [][]float64
		b    []float64
		err  error
	)
	switch {
	case *paper:
		rows, b = linreg.A(), linreg.B()
	case *data != "":
		rows, b, err = readCSV(*data)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -paper or -data is required")
	}

	a, err := matrix.FromRows(rows)
	if err != nil {
		return err
	}
	prob, err := core.NewLeastSquaresProblem(a, b)
	if err != nil {
		return err
	}
	n := prob.N()
	if !core.Feasible(n, *f) {
		return fmt.Errorf("f = %d infeasible for n = %d (Lemma 1 requires f < n/2)", *f, n)
	}

	rep, err := core.MeasureRedundancyWorkers(prob, *f, core.AtLeastSize, *workers)
	if err != nil {
		return err
	}
	cost, err := core.ExhaustiveCost(n, *f)
	if err != nil {
		return err
	}
	fmt.Printf("instance: n = %d agents, d = %d, f = %d\n", n, prob.Dim(), *f)
	fmt.Printf("(2f, eps)-redundancy: eps = %.6f over %d subset pairs\n", rep.Epsilon, rep.Pairs)
	fmt.Printf("worst pair: S = %v, Shat = %v\n", rep.WorstOuter, rep.WorstInner)
	fmt.Printf("Theorem 2: an (f, %.6f)-resilient output is achievable; the exhaustive\n", 2*rep.Epsilon)
	fmt.Printf("algorithm would perform %d subset minimizations.\n", cost)

	ex, err := core.ExhaustiveResilient(prob, *f)
	if err != nil {
		return fmt.Errorf("exhaustive algorithm: %w", err)
	}
	fmt.Printf("exhaustive output: %v (score r_S = %.6f)\n", ex.X, ex.Score)
	return nil
}

func readCSV(path string) (rows [][]float64, b []float64, err error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = file.Close() }()
	scanner := bufio.NewScanner(file)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			return nil, nil, fmt.Errorf("%s:%d: need at least one design value and a response", path, line)
		}
		vals := make([]float64, len(parts))
		for i, p := range parts {
			vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d field %d: %w", path, line, i+1, err)
			}
		}
		rows = append(rows, vals[:len(vals)-1])
		b = append(b, vals[len(vals)-1])
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%s: no agents found", path)
	}
	return rows, b, nil
}
