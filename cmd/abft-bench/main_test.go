package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"byzopt/internal/experiments"
	"byzopt/internal/sweep"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSmallFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	if err := run([]string{"-exp", "fig3", "-rounds", "5", "-csv", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"gradient-reverse", "random"} {
		path := prefix + "-fig3-" + fault + ".csv"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing CSV %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("empty CSV %s", path)
		}
	}
}

func TestRunTable1ViaSweep(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-rounds", "60", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestTable1SweepMatchesExperiments pins the parity between the
// sweep-driven Table 1 and the original experiments driver: the published
// table must not drift when sweep internals (seeding, defaults) change.
func TestTable1SweepMatchesExperiments(t *testing.T) {
	got, err := table1Rows(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row count %d vs %d", len(got), len(want))
	}
	const tol = 1e-9
	for i := range want {
		if got[i].Filter != want[i].Filter || got[i].Fault != want[i].Fault {
			t.Fatalf("row %d is %s/%s, want %s/%s", i, got[i].Filter, got[i].Fault, want[i].Filter, want[i].Fault)
		}
		if math.Abs(got[i].Dist-want[i].Dist) > tol {
			t.Errorf("%s/%s: dist %v vs experiments %v", got[i].Filter, got[i].Fault, got[i].Dist, want[i].Dist)
		}
		for k := range want[i].XOut {
			if math.Abs(got[i].XOut[k]-want[i].XOut[k]) > tol {
				t.Errorf("%s/%s: x_out[%d] %v vs experiments %v", got[i].Filter, got[i].Fault, k, got[i].XOut[k], want[i].XOut[k])
			}
		}
	}
}

func TestRunFigSweepWritesCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	if err := run([]string{"-exp", "figsweep", "-rounds", "10", "-workers", "4", "-csv", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"gradient-reverse", "random"} {
		for _, filter := range []string{"cwtm", "cge", "mean"} {
			path := prefix + "-figsweep-" + fault + "-" + filter + ".csv"
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing CSV %s: %v", path, err)
			}
			if len(data) == 0 {
				t.Errorf("empty CSV %s", path)
			}
		}
	}
}

// TestFigSweepMatchesFigureDriver pins the figure-series port onto the
// sweep engine: the per-round series a RecordTrace sweep exports must match
// the legacy sequential Figure-2 driver point for point, for every filter
// variant and fault the two share.
func TestFigSweepMatchesFigureDriver(t *testing.T) {
	const rounds = 40
	results, err := sweep.Run(figSweepSpec(rounds, 4))
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[[2]string]sweep.Result{}
	for _, r := range results {
		if r.Status() != "ok" {
			t.Fatalf("scenario %s: %s", r.Key(), r.Err)
		}
		bySeries[[2]string{r.Behavior, r.Filter}] = r
	}
	figs, _, err := experiments.Figure2(rounds)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy driver's series names map onto filter registry names;
	// "fault-free" omits the faulty agent and has no grid-point equivalent.
	filterFor := map[string]string{"cwtm": "cwtm", "cge": "cge", "plain-gd": "mean"}
	const tol = 1e-9
	compared := 0
	for _, fd := range figs {
		for _, s := range fd.Series {
			filter, ok := filterFor[s.Name]
			if !ok {
				continue
			}
			r, ok := bySeries[[2]string{fd.Fault, filter}]
			if !ok {
				t.Fatalf("sweep produced no scenario for %s/%s", fd.Fault, filter)
			}
			if len(r.TraceLoss) != len(s.Loss) || len(r.TraceDist) != len(s.Dist) {
				t.Fatalf("%s/%s: series lengths %d/%d vs driver %d/%d",
					fd.Fault, filter, len(r.TraceLoss), len(r.TraceDist), len(s.Loss), len(s.Dist))
			}
			for i := range s.Loss {
				if math.Abs(r.TraceLoss[i]-s.Loss[i]) > tol || math.Abs(r.TraceDist[i]-s.Dist[i]) > tol {
					t.Fatalf("%s/%s diverges from the figure driver at t=%d: loss %v vs %v, dist %v vs %v",
						fd.Fault, filter, i, r.TraceLoss[i], s.Loss[i], r.TraceDist[i], s.Dist[i])
				}
			}
			compared++
		}
	}
	if compared != 6 {
		t.Errorf("compared %d series, want 6 (3 filters x 2 faults)", compared)
	}
}

func TestRunGridWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := run([]string{"-exp", "grid", "-rounds", "20", "-workers", "4", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing JSON %s: %v", path, err)
	}
	if len(data) == 0 {
		t.Errorf("empty JSON %s", path)
	}
}

func TestRunAppendixJ(t *testing.T) {
	if err := run([]string{"-exp", "appj"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSVMSmall(t *testing.T) {
	if err := run([]string{"-exp", "svm", "-rounds", "20"}); err != nil {
		t.Fatal(err)
	}
}
