package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"byzopt/internal/experiments"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSmallFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	if err := run([]string{"-exp", "fig3", "-rounds", "5", "-csv", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"gradient-reverse", "random"} {
		path := prefix + "-fig3-" + fault + ".csv"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing CSV %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("empty CSV %s", path)
		}
	}
}

func TestRunTable1ViaSweep(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-rounds", "60", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestTable1SweepMatchesExperiments pins the parity between the
// sweep-driven Table 1 and the original experiments driver: the published
// table must not drift when sweep internals (seeding, defaults) change.
func TestTable1SweepMatchesExperiments(t *testing.T) {
	got, err := table1Rows(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row count %d vs %d", len(got), len(want))
	}
	const tol = 1e-9
	for i := range want {
		if got[i].Filter != want[i].Filter || got[i].Fault != want[i].Fault {
			t.Fatalf("row %d is %s/%s, want %s/%s", i, got[i].Filter, got[i].Fault, want[i].Filter, want[i].Fault)
		}
		if math.Abs(got[i].Dist-want[i].Dist) > tol {
			t.Errorf("%s/%s: dist %v vs experiments %v", got[i].Filter, got[i].Fault, got[i].Dist, want[i].Dist)
		}
		for k := range want[i].XOut {
			if math.Abs(got[i].XOut[k]-want[i].XOut[k]) > tol {
				t.Errorf("%s/%s: x_out[%d] %v vs experiments %v", got[i].Filter, got[i].Fault, k, got[i].XOut[k], want[i].XOut[k])
			}
		}
	}
}

func TestRunGridWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := run([]string{"-exp", "grid", "-rounds", "20", "-workers", "4", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing JSON %s: %v", path, err)
	}
	if len(data) == 0 {
		t.Errorf("empty JSON %s", path)
	}
}

func TestRunAppendixJ(t *testing.T) {
	if err := run([]string{"-exp", "appj"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSVMSmall(t *testing.T) {
	if err := run([]string{"-exp", "svm", "-rounds", "20"}); err != nil {
		t.Fatal(err)
	}
}
