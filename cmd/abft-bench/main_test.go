package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSmallFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	if err := run([]string{"-exp", "fig3", "-rounds", "5", "-csv", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, fault := range []string{"gradient-reverse", "random"} {
		path := prefix + "-fig3-" + fault + ".csv"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing CSV %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("empty CSV %s", path)
		}
	}
}

func TestRunAppendixJ(t *testing.T) {
	if err := run([]string{"-exp", "appj"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSVMSmall(t *testing.T) {
	if err := run([]string{"-exp", "svm", "-rounds", "20"}); err != nil {
		t.Fatal(err)
	}
}
