// Command abft-bench regenerates the paper's tables and figures, every one
// of them on the concurrent sweep engine: Table 1 and the full filter ×
// fault grid are summary sweeps, Figures 2-3 are RecordTrace sweeps over
// the paper instance plus the fault-free Baseline-axis scenario, and
// Figures 4-5 are learning-problem sweeps (per-round test accuracy rides in
// the trace). The retired sequential drivers survive only as test-only
// parity references.
//
// Usage:
//
//	abft-bench -exp table1
//	abft-bench -exp grid -workers 8 -json grid.json
//	abft-bench -exp fig2 -rounds 1500 -csv fig2 -workers 8
//	abft-bench -exp fig4 -rounds 1000 -csv fig4
//	abft-bench -exp appj
//	abft-bench -exp all
//
// With -csv PREFIX the full series are written to PREFIX-<fault>.csv (or
// PREFIX.csv for the learning figures); summaries always go to stdout.
//
// The sweeps here run on the in-process engine; abft-sweep exposes the same
// grids over every substrate (-backend inprocess, cluster, or p2p), and the
// `go test -bench` harness at the repo root carries the seq-vs-par and
// substrate benchmarks (BenchmarkP2PSweep, BenchmarkForEachSubset, ...)
// whose trajectory CI records as the BENCH artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"byzopt/internal/dgd"
	"byzopt/internal/experiments"
	"byzopt/internal/linreg"
	"byzopt/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abft-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("abft-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1, grid, stepsweep, fig2, fig3, fig4, fig5, svm, appj, all")
	rounds := fs.Int("rounds", 0, "override iteration count (0 = paper default)")
	csvPrefix := fs.String("csv", "", "write full series to CSV files with this prefix")
	workers := fs.Int("workers", 0, "sweep worker pool for grid experiments (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write grid results JSON to this file")
	etas := fs.String("etas", "0.005,0.02,0.05", "constant step sizes for the stepsweep experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			return runTable1(*rounds, *workers)
		case "grid":
			return runGrid(*rounds, *workers, *jsonPath)
		case "stepsweep":
			return runStepSweep(*rounds, *workers, *jsonPath, *etas)
		case "fig2":
			r := *rounds
			if r == 0 {
				r = 1500
			}
			return runFigure(name, r, *workers, *csvPrefix)
		case "fig3":
			r := *rounds
			if r == 0 {
				r = 80
			}
			return runFigure(name, r, *workers, *csvPrefix)
		case "fig4", "fig5":
			return runLearn(name, *rounds, *csvPrefix)
		case "svm":
			return runSVM(*rounds)
		case "appj":
			return runAppendixJ()
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"appj", "table1", "grid", "stepsweep", "fig2", "fig3", "fig4", "fig5", "svm"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	return runOne(*exp)
}

// runTable1 regenerates Table 1 — CGE and CWTM against the paper's two
// faults on the Appendix-J instance — as a 4-scenario sweep. The behavior
// seed is pinned to the harness's fixed "random" stream so the output
// matches experiments.Table1 row for row.
func runTable1(rounds, workers int) error {
	rows, err := table1Rows(rounds, workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable1(rows))
	inst, err := linreg.Paper()
	if err != nil {
		return err
	}
	fmt.Printf("(instance epsilon = %.4f; paper reports every distance below it)\n", inst.Epsilon)
	return nil
}

// table1Rows produces the Table-1 rows via the sweep engine; at the
// paper's rounds the output matches experiments.Table1 row for row (a
// parity the command's tests pin).
func table1Rows(rounds, workers int) ([]experiments.Table1Row, error) {
	results, err := sweep.Run(sweep.Spec{
		Problem:         sweep.ProblemPaper,
		Filters:         []string{"cge", "cwtm"},
		Behaviors:       []string{"gradient-reverse", "random"},
		Rounds:          rounds,
		Seed:            experiments.RandomFaultSeed,
		PinBehaviorSeed: true,
		Workers:         workers,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]experiments.Table1Row, 0, len(results))
	for _, r := range results {
		if r.Status() != "ok" {
			return nil, fmt.Errorf("scenario %s: %s", r.Key(), r.Err)
		}
		rows = append(rows, experiments.Table1Row{
			Filter: r.Filter,
			Fault:  r.Behavior,
			XOut:   r.FinalX,
			Dist:   r.FinalDist,
		})
	}
	return rows, nil
}

// runGrid sweeps every registered filter against every registered behavior
// at f in {1, 2} on the paper instance — the full Section-5-shaped matrix
// the paper samples from.
func runGrid(rounds, workers int, jsonPath string) error {
	results, err := sweep.Run(sweep.Spec{
		Problem: sweep.ProblemPaper,
		FValues: []int{1, 2},
		Rounds:  rounds,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(sweep.FormatTable(results))
	fmt.Println(sweep.Summarize(results))
	if jsonPath != "" {
		if err := sweep.WriteJSONFile(jsonPath, results, false); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runStepSweep runs the REDGRAF-style filtering-dynamics grid: the four
// REDGRAF filters plus the paper's CWTM reference under constant step sizes
// on the paper instance, with the convergence-geometry metrics
// (convergence_rate, convergence_radius, consensus_diameter) evaluated
// post hoc on every cell's trace. The SDMMFD pair needs n > 3f, so at f = 2
// on the paper instance (n = 6) those cells report skipped — the grid shows
// exactly where each filter's resilience condition gives out.
func runStepSweep(rounds, workers int, jsonPath, etas string) error {
	steps, err := parseEtas(etas)
	if err != nil {
		return err
	}
	if rounds == 0 {
		rounds = 400
	}
	results, err := sweep.Run(sweep.Spec{
		Problem:   sweep.ProblemPaper,
		Filters:   []string{"cwtm", "sdmmfd", "r-sdmmfd", "sdfd", "rvo"},
		Behaviors: []string{"gradient-reverse", "random"},
		FValues:   []int{1, 2},
		Steps:     steps,
		Rounds:    rounds,
		Workers:   workers,
		TraceMetrics: []string{
			sweep.TraceMetricConvergenceRate,
			sweep.TraceMetricConvergenceRadius,
			sweep.TraceMetricConsensusDiameter,
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(sweep.FormatTable(results))
	fmt.Println(sweep.Summarize(results))
	if jsonPath != "" {
		if err := sweep.WriteJSONFile(jsonPath, results, false); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// parseEtas turns the -etas list into constant step schedules.
func parseEtas(etas string) ([]dgd.StepSchedule, error) {
	var steps []dgd.StepSchedule
	for _, part := range strings.Split(etas, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eta, err := strconv.ParseFloat(part, 64)
		if err != nil || eta <= 0 {
			return nil, fmt.Errorf("invalid step size %q (want a positive number)", part)
		}
		steps = append(steps, dgd.Constant{Eta: eta})
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("empty -etas list")
	}
	return steps, nil
}

// runFigure produces Figures 2-3 via the two sweep Specs of
// experiments.FigureSpecs (grid panel + Baseline-axis fault-free run),
// parity-pinned to the retired sequential driver by the experiments tests.
func runFigure(name string, rounds, workers int, csvPrefix string) error {
	figs, inst, err := experiments.RegressionFigure(rounds, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s: loss and distance series via the sweep engine, t = 0..%d (x_H = (%.4f, %.4f))\n",
		name, rounds, inst.XH[0], inst.XH[1])
	for _, fd := range figs {
		fmt.Print(experiments.SummarizeFigure(fd))
		if csvPrefix != "" {
			path := fmt.Sprintf("%s-%s-%s.csv", csvPrefix, name, fd.Fault)
			if err := writeCSV(path, func(f *os.File) error {
				return experiments.WriteFigureCSV(f, fd)
			}); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}

func runLearn(name string, rounds int, csvPrefix string) error {
	cfg := experiments.LearnConfig{Rounds: rounds}
	var (
		series []experiments.LearnSeries
		err    error
	)
	if name == "fig4" {
		series, err = experiments.Figure4(cfg)
	} else {
		series, err = experiments.Figure5(cfg)
	}
	if err != nil {
		return err
	}
	dataset := "A (MNIST stand-in)"
	if name == "fig5" {
		dataset = "B (Fashion-MNIST stand-in)"
	}
	fmt.Printf("%s: D-SGD on synthetic dataset %s, n=10, f=3\n", name, dataset)
	fmt.Print(experiments.SummarizeLearn(series))
	if csvPrefix != "" {
		path := fmt.Sprintf("%s-%s.csv", csvPrefix, name)
		if err := writeCSV(path, func(f *os.File) error {
			return experiments.WriteLearnCSV(f, series)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func runSVM(rounds int) error {
	results, err := experiments.SVM(rounds)
	if err != nil {
		return err
	}
	fmt.Println("distributed SVM (hinge loss), n=10, f=3")
	fmt.Printf("%-12s %10s %10s\n", "variant", "loss", "accuracy")
	for _, r := range results {
		fmt.Printf("%-12s %10.4f %9.1f%%\n", r.Name, r.Loss, 100*r.Accuracy)
	}
	return nil
}

func runAppendixJ() error {
	rep, err := experiments.AppendixJ()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAppendixJ(rep))
	return nil
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
