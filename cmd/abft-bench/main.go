// Command abft-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	abft-bench -exp table1
//	abft-bench -exp fig2 -rounds 1500 -csv fig2
//	abft-bench -exp fig4 -rounds 1000 -csv fig4
//	abft-bench -exp appj
//	abft-bench -exp all
//
// With -csv PREFIX the full series are written to PREFIX-<fault>.csv (or
// PREFIX.csv for the learning figures); summaries always go to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"byzopt/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abft-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("abft-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1, fig2, fig3, fig4, fig5, svm, appj, all")
	rounds := fs.Int("rounds", 0, "override iteration count (0 = paper default)")
	csvPrefix := fs.String("csv", "", "write full series to CSV files with this prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			return runTable1()
		case "fig2":
			r := *rounds
			if r == 0 {
				r = 1500
			}
			return runFigure(name, r, *csvPrefix)
		case "fig3":
			r := *rounds
			if r == 0 {
				r = 80
			}
			return runFigure(name, r, *csvPrefix)
		case "fig4", "fig5":
			return runLearn(name, *rounds, *csvPrefix)
		case "svm":
			return runSVM(*rounds)
		case "appj":
			return runAppendixJ()
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"appj", "table1", "fig2", "fig3", "fig4", "fig5", "svm"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	return runOne(*exp)
}

func runTable1() error {
	rows, inst, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable1(rows))
	fmt.Printf("(instance epsilon = %.4f; paper reports every distance below it)\n", inst.Epsilon)
	return nil
}

func runFigure(name string, rounds int, csvPrefix string) error {
	figs, inst, err := experiments.Figure2(rounds)
	if err != nil {
		return err
	}
	fmt.Printf("%s: loss and distance series, t = 0..%d (x_H = (%.4f, %.4f))\n",
		name, rounds, inst.XH[0], inst.XH[1])
	for _, fd := range figs {
		fmt.Print(experiments.SummarizeFigure(fd))
		if csvPrefix != "" {
			path := fmt.Sprintf("%s-%s-%s.csv", csvPrefix, name, fd.Fault)
			if err := writeCSV(path, func(f *os.File) error {
				return experiments.WriteFigureCSV(f, fd)
			}); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}

func runLearn(name string, rounds int, csvPrefix string) error {
	cfg := experiments.LearnConfig{Rounds: rounds}
	var (
		series []experiments.LearnSeries
		err    error
	)
	if name == "fig4" {
		series, err = experiments.Figure4(cfg)
	} else {
		series, err = experiments.Figure5(cfg)
	}
	if err != nil {
		return err
	}
	dataset := "A (MNIST stand-in)"
	if name == "fig5" {
		dataset = "B (Fashion-MNIST stand-in)"
	}
	fmt.Printf("%s: D-SGD on synthetic dataset %s, n=10, f=3\n", name, dataset)
	fmt.Print(experiments.SummarizeLearn(series))
	if csvPrefix != "" {
		path := fmt.Sprintf("%s-%s.csv", csvPrefix, name)
		if err := writeCSV(path, func(f *os.File) error {
			return experiments.WriteLearnCSV(f, series)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func runSVM(rounds int) error {
	results, err := experiments.SVM(rounds)
	if err != nil {
		return err
	}
	fmt.Println("distributed SVM (hinge loss), n=10, f=3")
	fmt.Printf("%-12s %10s %10s\n", "variant", "loss", "accuracy")
	for _, r := range results {
		fmt.Printf("%-12s %10.4f %9.1f%%\n", r.Name, r.Loss, 100*r.Accuracy)
	}
	return nil
}

func runAppendixJ() error {
	rep, err := experiments.AppendixJ()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAppendixJ(rep))
	return nil
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
