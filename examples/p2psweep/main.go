// P2P sweep: scenario grids over the Byzantine-broadcast substrate.
//
// PR 2 made every execution substrate a dgd.Backend; this example runs a
// sweep grid on the fully decentralized peer-to-peer backend (Figure 1,
// right) and exercises the one adversary only this substrate can express —
// the "equivocate" behavior, which reverses its gradient like
// gradient-reverse AND lies per recipient while relaying other peers'
// broadcasts. The EIG broadcast forces agreement anyway, so the honest
// peers converge; the grid also includes an f = 2 column at n = 6, which
// violates the broadcast bound n > 3f and comes back as a classified
// "skipped" cell instead of failing the sweep.
//
// The equivalent CLI invocation is
//
//	abft-sweep -backend p2p -problem paper -filters cge,cwtm \
//	    -behaviors gradient-reverse,equivocate -f 1,2
//
// Run with: go run ./examples/p2psweep
package main

import (
	"fmt"
	"log"

	"byzopt"
)

func main() {
	results, err := byzopt.Sweep(byzopt.SweepSpec{
		Problem:   "paper",
		Filters:   []string{"cge", "cwtm"},
		Behaviors: []string{"gradient-reverse", "equivocate"},
		FValues:   []int{1, 2},
		Rounds:    500,
		Backend:   byzopt.P2PBackend(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scenario grid over the p2p (Byzantine broadcast) backend, n = 6:")
	for i := range results {
		r := &results[i]
		switch r.Status() {
		case "ok":
			fmt.Printf("  %-6s f=%d %-16s  dist(x_T, x_H) = %.6f\n",
				r.Filter, r.F, r.Behavior, r.FinalDist)
		case "skipped":
			fmt.Printf("  %-6s f=%d %-16s  skipped: %s\n", r.Filter, r.F, r.Behavior, r.Err)
		default:
			fmt.Printf("  %-6s f=%d %-16s  %s: %s\n", r.Filter, r.F, r.Behavior, r.Status(), r.Err)
		}
	}
	fmt.Println()
	fmt.Println("equivocate garbles its broadcast relays, yet EIG agreement holds and the")
	fmt.Println("filters keep every admissible cell near x_H; the f=2 cells violate the")
	fmt.Println("n > 3f broadcast bound and are classified, not fatal.")
}
