// TCPCluster: the full Figure-1 server-based deployment on real sockets,
// inside one process.
//
// A server listens on loopback; six agent goroutines dial in over TCP (in a
// real deployment each would be cmd/abft-agent on its own machine), agent 0
// reverses its gradients, and one honest agent crashes mid-run to
// demonstrate the step-S1 elimination rule: under synchrony a silent agent
// is provably faulty, so the server drops it and decrements both n and f.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"byzopt/internal/aggregate"
	"byzopt/internal/byzantine"
	"byzopt/internal/cluster"
	"byzopt/internal/dgd"
	"byzopt/internal/linreg"
	"byzopt/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inst, err := linreg.Paper()
	if err != nil {
		return err
	}
	costs, err := inst.Costs()
	if err != nil {
		return err
	}
	agents, err := dgd.HonestAgents(costs)
	if err != nil {
		return err
	}
	// Agent 0: Byzantine gradients. Agent 3: honest but crashes at round 60.
	fa, err := dgd.NewFaulty(agents[0], byzantine.GradientReverse{})
	if err != nil {
		return err
	}
	agents[0] = fa
	flaky := transport.NewFlaky(agents[3], 60)
	defer flaky.Release()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	fmt.Printf("server listening on %s\n", l.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for id := range agents {
		producer := transport.GradientProducer(agents[id])
		if id == 3 {
			producer = flaky
		}
		wg.Add(1)
		go func(id int, p transport.GradientProducer) {
			defer wg.Done()
			if err := transport.ServeAgent(ctx, l.Addr().String(), id, p); err != nil {
				log.Printf("agent %d: %v", id, err)
			}
		}(id, producer)
	}

	conns, err := transport.AcceptAgents(l, len(agents), 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("all agents connected; agent 0 is Byzantine, agent 3 will crash at round 60")

	// f = 2: one budgeted Byzantine agent plus one for the crash.
	srv, err := cluster.NewServer(cluster.Config{
		Conns:        conns,
		F:            2,
		Filter:       aggregate.CGE{},
		Box:          inst.Box,
		X0:           inst.X0,
		Rounds:       300,
		RoundTimeout: 300 * time.Millisecond,
		Reference:    inst.XH,
	})
	if err != nil {
		return err
	}
	res, err := srv.Run(context.Background())
	for _, c := range conns {
		_ = c.Close()
	}
	cancel()
	flaky.Release() // unblock the crashed agent's goroutine before waiting
	wg.Wait()
	if err != nil {
		return err
	}

	fmt.Printf("eliminated agents: %v (final n=%d, f=%d)\n", res.Eliminated, res.FinalN, res.FinalF)
	fmt.Printf("final estimate: (%.4f, %.4f)\n", res.X[0], res.X[1])
	fmt.Printf("distance to x_H: %.4f\n", res.Trace.Dist[len(res.Trace.Dist)-1])
	return nil
}
