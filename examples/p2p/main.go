// P2P: serverless Byzantine-resilient optimization over Byzantine broadcast.
//
// The paper's Section 1.4 observes that the server-based algorithm can be
// simulated on a complete peer-to-peer network when f < n/3, using a
// Byzantine broadcast primitive. This example runs that construction: six
// peers, one of which both injects a reversed gradient AND equivocates
// while relaying other peers' gradients. The EIG broadcast forces agreement
// anyway, every honest peer applies the CGE filter locally, and all honest
// estimates stay bit-for-bit identical while converging.
//
// Run with: go run ./examples/p2p
package main

import (
	"fmt"
	"log"

	"byzopt/internal/aggregate"
	"byzopt/internal/byzantine"
	"byzopt/internal/dgd"
	"byzopt/internal/linreg"
	"byzopt/internal/p2p"
)

func main() {
	inst, err := linreg.Paper()
	if err != nil {
		log.Fatal(err)
	}
	costs, err := inst.Costs()
	if err != nil {
		log.Fatal(err)
	}
	agents, err := dgd.HonestAgents(costs)
	if err != nil {
		log.Fatal(err)
	}

	peers := make([]p2p.Peer, len(agents))
	for i, a := range agents {
		peers[i] = p2p.Peer{Agent: a}
	}
	// Peer 0 is fully Byzantine: wrong gradient and lying relays.
	fa, err := dgd.NewFaulty(agents[0], byzantine.GradientReverse{})
	if err != nil {
		log.Fatal(err)
	}
	peers[0] = p2p.Peer{Agent: fa, Distorter: p2p.SeededLiar{Seed: 3}}

	cost, err := p2p.MessageCost(linreg.N, linreg.F)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n = %d peers, f = %d, EIG broadcast tree: %d nodes per broadcast\n",
		linreg.N, linreg.F, cost)

	res, err := p2p.Run(p2p.Config{
		Peers:     peers,
		F:         linreg.F,
		Filter:    aggregate.CGE{},
		Box:       inst.Box,
		X0:        inst.X0,
		Rounds:    200,
		Reference: inst.XH,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest peers' common estimate: (%.4f, %.4f)\n", res.X[0], res.X[1])
	fmt.Printf("distance to x_H: %.2e\n", res.Trace.Dist[len(res.Trace.Dist)-1])
	fmt.Printf("max estimate spread across honest peers: %v (agreement held)\n", res.MaxEstimateSpread)
}
