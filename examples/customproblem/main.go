// Customproblem: registering your own workload with the sweep engine.
//
// The sweep engine runs any workload that implements byzopt.Problem: build
// deterministic per-agent costs for a scenario, report the reference point
// x_H, the honest aggregate loss, the initial point, and (optionally) a
// per-round task metric. This example defines "temperature" — n thermometers
// around a common reading, up to f of them Byzantine — registers it, and
// sweeps it across filters, fault counts, and the fault-free baseline axis,
// exactly like the built-in paper workloads.
//
// Run with: go run ./examples/customproblem
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"byzopt"
)

// temperature is the custom workload: thermometer i holds the cost
// (x - reading_i)², so the honest aggregate minimizes at the honest mean —
// one-dimensional robust mean estimation with a known ground truth.
type temperature struct{}

// Name is the registry key; SweepSpec.Problem and abft-sweep -problem can
// select the workload by it once registered.
func (temperature) Name() string { return "temperature" }

// Validate vets the spec axes the problem consumes. The engine has already
// validated filters and behaviors (a problem with its own fault vocabulary
// would declare it via an ExtraBehaviors() []string method — see the
// learning family).
func (temperature) Validate(spec *byzopt.SweepSpec) error {
	for _, d := range spec.Dims {
		if d != 1 {
			return fmt.Errorf("temperature is one-dimensional, got d = %d", d)
		}
	}
	return nil
}

// Key identifies which scenarios share one built instance: the readings
// depend on the system size and the fault split, nothing else.
func (temperature) Key(spec *byzopt.SweepSpec, scn byzopt.SweepScenario) string {
	return fmt.Sprintf("temperature n=%d f=%d", scn.N, scn.F)
}

// Build materializes the instance. It must be deterministic in (spec,
// scenario) — scenario seeds, replay, and shard merging all assume the
// workload is a pure function of the grid axes.
func (temperature) Build(spec *byzopt.SweepSpec, scn byzopt.SweepScenario) (*byzopt.Workload, error) {
	r := rand.New(rand.NewSource(spec.Seed + int64(scn.N)<<16 + int64(scn.F)))
	const trueTemp = 21.5
	readings := make([]float64, scn.N)
	for i := range readings {
		readings[i] = trueTemp + 0.3*r.NormFloat64()
	}
	// The first scn.F agents are the Byzantine slots; x_H is the honest
	// readings' mean, and the honest loss is their aggregate cost.
	var honestSum float64
	for _, v := range readings[scn.F:] {
		honestSum += v
	}
	xH := []float64{honestSum / float64(scn.N-scn.F)}
	costs := make([]byzopt.Cost, scn.N)
	for i, v := range readings {
		cost, err := byzopt.SingleObservationCost([]float64{1}, v)
		if err != nil {
			return nil, err
		}
		costs[i] = cost
	}
	box, err := byzopt.NewCube(1, 1000)
	if err != nil {
		return nil, err
	}
	honestLoss, err := byzopt.SumCost(costs[scn.F:]...)
	if err != nil {
		return nil, err
	}
	return &byzopt.Workload{
		NewAgents:  func() ([]byzopt.Agent, error) { return byzopt.HonestAgents(costs) },
		X0:         []float64{0},
		XH:         xH,
		Box:        box,
		HonestLoss: honestLoss,
		// An optional task metric rides along in every result (and, with
		// RecordTrace, as a per-round series): here, the absolute error
		// against the ground truth the estimator never sees.
		Metric: &byzopt.Metric{
			Name:  "abs_error_vs_truth",
			Every: 1,
			Eval: func(x []float64) (float64, error) {
				err := x[0] - trueTemp
				if err < 0 {
					err = -err
				}
				return err, nil
			},
		},
	}, nil
}

func main() {
	// One Register call makes the workload a grid axis value like any
	// built-in (byzopt.ProblemNames() now lists it). For a one-off, skip
	// registration and set SweepSpec.ProblemDef instead.
	if err := byzopt.RegisterProblem(temperature{}); err != nil {
		log.Fatal(err)
	}

	results, err := byzopt.Sweep(byzopt.SweepSpec{
		Problem:   "temperature",
		Filters:   []string{"cge", "cwtm", "mean"},
		Behaviors: []string{"gradient-reverse"},
		FValues:   []int{2},
		NValues:   []int{15},
		Dims:      []int{1},
		Rounds:    300,
		Baselines: []bool{false, true}, // add the fault-free omit-them baseline
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("temperature estimation, n=15 thermometers, f=2 Byzantine:")
	fmt.Printf("%-8s %-18s %12s %14s\n", "filter", "behavior", "|x - x_H|", "error vs truth")
	for _, r := range results {
		behavior := r.Behavior
		if r.Baseline {
			behavior = "(baseline)"
		}
		fmt.Printf("%-8s %-18s %12.6f %14.6f\n", r.Filter, behavior, r.FinalDist, r.MetricFinal)
	}

	// The export is deterministic: same spec, same bytes, at any worker
	// count — which is also what makes sharded runs mergeable.
	if err := byzopt.WriteSweepJSON(os.Stdout, results[:1], false); err != nil {
		log.Fatal(err)
	}
}
