// Sensing: secure state estimation under sensor attacks (paper Section 2.4).
//
// Eight sensors each observe two linear combinations of a 3-dimensional
// system state; two of them are compromised and report garbage. Because the
// system is 2f-sparse observable — equivalently, the induced costs satisfy
// 2f-redundancy — the Theorem-2 estimator recovers the exact state, and the
// filtered-DGD estimator recovers it iteratively.
//
// Run with: go run ./examples/sensing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"byzopt/internal/aggregate"
	"byzopt/internal/matrix"
	"byzopt/internal/sensing"
	"byzopt/internal/vecmath"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r := rand.New(rand.NewSource(42))
	state := []float64{1.5, -0.5, 2.0} // the hidden truth
	const n, f = 8, 2

	sensors := make([]sensing.Sensor, n)
	for i := range sensors {
		rows := [][]float64{
			{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()},
			{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()},
		}
		c, err := matrix.FromRows(rows)
		if err != nil {
			return err
		}
		y, err := c.MulVec(state)
		if err != nil {
			return err
		}
		if i >= n-f { // compromised sensors report garbage
			for k := range y {
				y[k] = 1e3 * r.NormFloat64()
			}
		}
		sensors[i] = sensing.Sensor{C: c, Y: y}
	}
	sys, err := sensing.NewSystem(sensors)
	if err != nil {
		return err
	}

	observable, err := sys.SparseObservable(f)
	if err != nil {
		return err
	}
	fmt.Printf("system: %d sensors, state dim 3, f = %d compromised\n", n, f)
	fmt.Printf("2f-sparse observable (= 2f-redundancy): %v\n", observable)

	est, err := sys.Estimate(f)
	if err != nil {
		return err
	}
	d, err := vecmath.Dist(est.X, state)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem-2 estimate:  (%.4f, %.4f, %.4f), error %.2e\n", est.X[0], est.X[1], est.X[2], d)
	fmt.Printf("  (selected sensors %v — the compromised pair excluded)\n", est.Subset)

	dgdEst, err := sys.EstimateDGD(f, aggregate.CWTM{}, 800)
	if err != nil {
		return err
	}
	d2, err := vecmath.Dist(dgdEst, state)
	if err != nil {
		return err
	}
	fmt.Printf("filtered-DGD (CWTM): (%.4f, %.4f, %.4f), error %.2e\n", dgdEst[0], dgdEst[1], dgdEst[2], d2)
	return nil
}
