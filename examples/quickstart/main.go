// Quickstart: fault-tolerant distributed gradient descent in ~50 lines.
//
// Six agents share a 2-parameter linear regression; one of them is
// Byzantine and reverses its gradient every round. The CGE gradient filter
// (comparative gradient elimination) keeps the optimization on track.
//
// The same configuration runs on two execution substrates through the
// Backend interface: the in-process engine and the cluster stack (a trusted
// server talking to each agent over its own in-memory connection). Both
// produce the same estimate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"byzopt"
)

func main() {
	// Each agent observes one row of a linear model with x* = (1, 1).
	rows := [][]float64{
		{1, 0}, {0.8, 0.5}, {0.5, 0.8}, {0, 1}, {-0.5, 0.8}, {-0.8, 0.5},
	}
	agents := make([]byzopt.Agent, len(rows))
	for i, row := range rows {
		b := row[0]*1 + row[1]*1 // noise-free observation of x* = (1, 1)
		cost, err := byzopt.SingleObservationCost(row, b)
		if err != nil {
			log.Fatal(err)
		}
		agents[i], err = byzopt.HonestAgent(cost)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Agent 0 turns Byzantine: it reverses its true gradient.
	reverse, err := byzopt.NewBehavior("gradient-reverse", 0)
	if err != nil {
		log.Fatal(err)
	}
	agents[0], err = byzopt.ByzantineAgent(agents[0], reverse)
	if err != nil {
		log.Fatal(err)
	}

	filter, err := byzopt.NewFilter("cge")
	if err != nil {
		log.Fatal(err)
	}
	box, err := byzopt.NewCube(2, 1000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := byzopt.Config{
		Agents:    agents,
		F:         1, // tolerate up to one Byzantine agent
		Filter:    filter,
		Steps:     byzopt.Diminishing{C: 1.5, P: 1},
		Box:       box,
		X0:        []float64{0, 0},
		Rounds:    500,
		Reference: []float64{1, 1},
	}

	// One Config, two substrates: the in-process simulation and the
	// server/transport cluster execute the identical protocol.
	ctx := context.Background()
	for _, b := range []struct {
		name    string
		backend byzopt.Backend
	}{
		{"in-process", byzopt.InProcessBackend()},
		{"cluster", byzopt.ClusterBackend(0)},
	} {
		res, err := b.backend.Run(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s estimate after %d rounds: (%.4f, %.4f), distance to the honest optimum %.2e\n",
			b.name, res.Rounds, res.X[0], res.X[1], res.Trace.Dist[len(res.Trace.Dist)-1])
	}
}
