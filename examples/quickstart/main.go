// Quickstart: fault-tolerant distributed gradient descent in ~40 lines.
//
// Six agents share a 2-parameter linear regression; one of them is
// Byzantine and reverses its gradient every round. The CGE gradient filter
// (comparative gradient elimination) keeps the optimization on track.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"byzopt"
)

func main() {
	// Each agent observes one row of a linear model with x* = (1, 1).
	rows := [][]float64{
		{1, 0}, {0.8, 0.5}, {0.5, 0.8}, {0, 1}, {-0.5, 0.8}, {-0.8, 0.5},
	}
	agents := make([]byzopt.Agent, len(rows))
	for i, row := range rows {
		b := row[0]*1 + row[1]*1 // noise-free observation of x* = (1, 1)
		cost, err := byzopt.SingleObservationCost(row, b)
		if err != nil {
			log.Fatal(err)
		}
		agents[i], err = byzopt.HonestAgent(cost)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Agent 0 turns Byzantine: it reverses its true gradient.
	reverse, err := byzopt.NewBehavior("gradient-reverse", 0)
	if err != nil {
		log.Fatal(err)
	}
	agents[0], err = byzopt.ByzantineAgent(agents[0], reverse)
	if err != nil {
		log.Fatal(err)
	}

	filter, err := byzopt.NewFilter("cge")
	if err != nil {
		log.Fatal(err)
	}
	box, err := byzopt.NewCube(2, 1000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := byzopt.Run(byzopt.Config{
		Agents:    agents,
		F:         1, // tolerate up to one Byzantine agent
		Filter:    filter,
		Steps:     byzopt.Diminishing{C: 1.5, P: 1},
		Box:       box,
		X0:        []float64{0, 0},
		Rounds:    500,
		Reference: []float64{1, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate after %d rounds: (%.4f, %.4f)\n", res.Rounds, res.X[0], res.X[1])
	fmt.Printf("distance to the honest optimum: %.2e\n", res.Trace.Dist[len(res.Trace.Dist)-1])
}
