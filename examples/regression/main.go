// Regression: reproduce the paper's Table 1 through the public API.
//
// The exact Appendix-J data (design matrix A, noisy responses B) is embedded
// below. Agent 0 is Byzantine; we run DGD with the CGE and CWTM filters
// against the gradient-reverse and random faults and report the output
// x_500 and its distance to the honest minimizer x_H, as Table 1 does.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"log"
	"math"

	"byzopt"
)

// Appendix J, equation (132).
var (
	paperA = [][]float64{
		{1, 0}, {0.8, 0.5}, {0.5, 0.8}, {0, 1}, {-0.5, 0.8}, {-0.8, 0.5},
	}
	paperB  = []float64{0.9108, 1.3349, 1.3376, 1.0033, 0.2142, -0.3615}
	paperX0 = []float64{-0.0085, -0.5643}
)

func main() {
	// The honest minimizer x_H: least squares over agents 1..5. We obtain
	// it from the theory API: the aggregate of the honest subset.
	prob, err := byzopt.RegressionProblem(paperA, paperB)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := byzopt.MeasureRedundancy(prob, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured (2f, eps)-redundancy: eps = %.4f (paper: 0.0890)\n\n", rep.Epsilon)

	// x_H via the exhaustive Theorem-2 algorithm (which, on this instance,
	// selects exactly the honest five agents).
	ex, err := byzopt.ExhaustiveResilient(prob, 1)
	if err != nil {
		log.Fatal(err)
	}
	xH := ex.X
	fmt.Printf("honest minimizer x_H = (%.4f, %.4f) (paper: 1.0780, 0.9825)\n\n", xH[0], xH[1])

	fmt.Printf("%-8s %-18s %-22s %s\n", "filter", "fault", "x_out", "dist(x_H, x_out)")
	for _, filterName := range []string{"cge", "cwtm"} {
		for _, fault := range []string{"gradient-reverse", "random"} {
			xOut, err := runOnce(filterName, fault)
			if err != nil {
				log.Fatal(err)
			}
			d := math.Hypot(xOut[0]-xH[0], xOut[1]-xH[1])
			fmt.Printf("%-8s %-18s (%.4f, %.4f)       %.3e\n", filterName, fault, xOut[0], xOut[1], d)
		}
	}
	fmt.Println("\nevery distance sits below eps, the paper's Table-1 finding")
}

func runOnce(filterName, fault string) ([]float64, error) {
	agents := make([]byzopt.Agent, len(paperA))
	for i, row := range paperA {
		cost, err := byzopt.SingleObservationCost(row, paperB[i])
		if err != nil {
			return nil, err
		}
		agents[i], err = byzopt.HonestAgent(cost)
		if err != nil {
			return nil, err
		}
	}
	behavior, err := byzopt.NewBehavior(fault, 2021)
	if err != nil {
		return nil, err
	}
	agents[0], err = byzopt.ByzantineAgent(agents[0], behavior)
	if err != nil {
		return nil, err
	}
	filter, err := byzopt.NewFilter(filterName)
	if err != nil {
		return nil, err
	}
	box, err := byzopt.NewCube(2, 1000)
	if err != nil {
		return nil, err
	}
	res, err := byzopt.Run(byzopt.Config{
		Agents: agents,
		F:      1,
		Filter: filter,
		Steps:  byzopt.Diminishing{C: 1.5, P: 1},
		Box:    box,
		X0:     paperX0,
		Rounds: 500,
	})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}
