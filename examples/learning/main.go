// Learning: Byzantine-robust distributed SGD on a classification task,
// reproducing the shape of Appendix K (Figures 4-5).
//
// Ten agents share a synthetic 10-class dataset (the offline stand-in for
// MNIST; see DESIGN.md section 4). Three of them are Byzantine: their data
// is label-flipped (y -> 9-y) or their gradients reversed. D-SGD with the
// CGE or CWTM filter tracks the fault-free run, while plain averaging is
// wrecked by the same faults.
//
// Run with: go run ./examples/learning
package main

import (
	"fmt"
	"log"

	"byzopt"
	"byzopt/internal/byzantine"
	"byzopt/internal/mlsim"
)

const (
	agents = 10
	faults = 3
	batch  = 64
	rounds = 250
	seed   = 11
)

func main() {
	gen := mlsim.PresetA(seed)
	gen.Train, gen.Test = 2000, 500 // keep the example snappy
	train, test, err := mlsim.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	model := mlsim.Softmax{Classes: gen.Classes, Dim: gen.Dim, Reg: 1e-4}

	fmt.Printf("%-28s %9s %9s\n", "variant", "loss", "accuracy")
	for _, v := range []struct {
		name   string
		filter string
		fault  string
	}{
		{"fault-free (7 honest only)", "mean", ""},
		{"plain mean + label-flip", "mean", "lf"},
		{"CGE + label-flip", "cge-avg", "lf"},
		{"CWTM + label-flip", "cwtm", "lf"},
		{"CGE + gradient-reverse", "cge-avg", "gr"},
		{"CWTM + gradient-reverse", "cwtm", "gr"},
	} {
		loss, acc, err := runVariant(model, train, test, v.filter, v.fault)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.4f %8.1f%%\n", v.name, loss, 100*acc)
	}
	fmt.Println("\nfiltered runs track the fault-free baseline; plain averaging does not")
}

func runVariant(model mlsim.Softmax, train, test *mlsim.Dataset, filterName, fault string) (loss, acc float64, err error) {
	shards, err := mlsim.Shard(train, agents)
	if err != nil {
		return 0, 0, err
	}
	var list []byzopt.Agent
	f := faults
	for i, shard := range shards {
		faulty := i >= agents-faults
		if fault == "" && faulty {
			continue // fault-free baseline: the would-be faulty agents sit out
		}
		if fault == "lf" && faulty {
			mlsim.FlipLabels(shard)
		}
		var agent byzopt.Agent = &mlsim.SGDAgent{
			Model: model, Data: shard, Batch: batch, Seed: seed + int64(i)*997,
		}
		if fault == "gr" && faulty {
			agent, err = byzopt.ByzantineAgent(agent, byzantine.GradientReverse{})
			if err != nil {
				return 0, 0, err
			}
		}
		list = append(list, agent)
	}
	if fault == "" {
		f = 0
	}
	filter, err := byzopt.NewFilter(filterName)
	if err != nil {
		return 0, 0, err
	}
	res, err := byzopt.Run(byzopt.Config{
		Agents: list,
		F:      f,
		Filter: filter,
		Steps:  byzopt.ConstantStep{Eta: 0.05},
		X0:     make([]float64, model.ParamDim()),
		Rounds: rounds,
	})
	if err != nil {
		return 0, 0, err
	}
	loss, err = model.Loss(res.X, train)
	if err != nil {
		return 0, 0, err
	}
	acc, err = model.Accuracy(res.X, test)
	if err != nil {
		return 0, 0, err
	}
	return loss, acc, nil
}
