// Exhaustive: the Theorem-2 algorithm and the Theorem-1 impossibility, live.
//
// Part 1 plants a random regression instance with approximate redundancy,
// measures its (2f, eps)-redundancy, runs the exhaustive (f, 2 eps)-resilient
// algorithm, and verifies the Definition-2 guarantee directly.
//
// Part 2 reconstructs the Theorem-1 lower-bound scenario: two
// indistinguishable worlds whose honest minimizers sit far apart — no
// deterministic algorithm can be close to both, so resilience below the
// redundancy level is impossible.
//
// Run with: go run ./examples/exhaustive
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"byzopt"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("== Theorem 2: exhaustive resilient aggregation ==")
	r := rand.New(rand.NewSource(7))
	const n, f, d = 7, 2, 2

	// Each agent observes x* = (2, -1) through a random row, with noise —
	// noise breaks exact 2f-redundancy, leaving the approximate kind.
	xstar := []float64{2, -1}
	rows := make([][]float64, n)
	b := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{r.NormFloat64(), r.NormFloat64()}
		b[i] = rows[i][0]*xstar[0] + rows[i][1]*xstar[1] + 0.05*r.NormFloat64()
	}
	prob, err := byzopt.RegressionProblem(rows, b)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := byzopt.MeasureRedundancy(prob, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured eps = %.5f (worst pair S=%v, Shat=%v)\n",
		rep.Epsilon, rep.WorstOuter, rep.WorstInner)

	ex, err := byzopt.ExhaustiveResilient(prob, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive output x = (%.4f, %.4f), selected subset %v, score %.5f\n",
		ex.X[0], ex.X[1], ex.Subset, ex.Score)

	honest := make([]int, n)
	for i := range honest {
		honest[i] = i
	}
	resil, err := byzopt.MeasureResilience(prob, f, honest, ex.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst (n-f)-subset distance: %.5f <= 2 eps = %.5f  [Theorem 2 verified]\n\n",
		resil.MaxDistance, 2*rep.Epsilon)
}

func part2() {
	fmt.Println("== Theorem 1: why redundancy is necessary ==")
	// One dimension, n = 3, f = 1. Agents 0 and 1 minimize at 0; agent 2 at
	// 2c. Worlds: (i) honest = {0, 1} (agent 2 Byzantine), honest optimum 0;
	// (ii) honest = {1, 2} (agent 0 Byzantine), honest optimum c. The server
	// sees the same three cost functions either way.
	const c = 5.0
	rows := [][]float64{{1}, {1}, {1}}
	b := []float64{0, 0, 2 * c}
	prob, err := byzopt.RegressionProblem(rows, b)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := byzopt.ExhaustiveResilient(prob, 1)
	if err != nil {
		log.Fatal(err)
	}
	x := ex.X[0]
	dWorld1 := math.Abs(x - 0)
	dWorld2 := math.Abs(x - c)
	fmt.Printf("any deterministic output (ours: %.3f) is %.3f from world (i)'s optimum\n", x, dWorld1)
	fmt.Printf("and %.3f from world (ii)'s optimum; max(%.3f, %.3f) >= c/2 = %.3f\n",
		dWorld2, dWorld1, dWorld2, c/2)
	fmt.Println("so without redundancy, no algorithm achieves resilience below c/2  [Theorem 1]")
}
