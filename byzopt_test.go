package byzopt

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// buildRegression constructs a 6-agent noisy regression through the public
// API only.
func buildRegression(t *testing.T) ([]Cost, []float64) {
	t.Helper()
	rows := [][]float64{
		{1, 0}, {0.8, 0.5}, {0.5, 0.8}, {0, 1}, {-0.5, 0.8}, {-0.8, 0.5},
	}
	xstar := []float64{1, 1}
	costs := make([]Cost, len(rows))
	for i, row := range rows {
		b := row[0]*xstar[0] + row[1]*xstar[1]
		c, err := SingleObservationCost(row, b)
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = c
	}
	return costs, xstar
}

func TestPublicAPIEndToEnd(t *testing.T) {
	costs, xstar := buildRegression(t)
	agents, err := HonestAgents(costs)
	if err != nil {
		t.Fatal(err)
	}
	behavior, err := NewBehavior("gradient-reverse", 0)
	if err != nil {
		t.Fatal(err)
	}
	agents[0], err = ByzantineAgent(agents[0], behavior)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := NewFilter("cge")
	if err != nil {
		t.Fatal(err)
	}
	box, err := NewCube(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Agents:    agents,
		F:         1,
		Filter:    filter,
		Steps:     Diminishing{C: 1.5, P: 1},
		Box:       box,
		X0:        []float64{0, 0},
		Rounds:    400,
		Reference: xstar,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Trace.Dist[len(res.Trace.Dist)-1]; d > 0.05 {
		t.Errorf("final distance = %v", d)
	}
}

// TestPublicBackendsAgree: one Config, all three public backends, identical
// trajectories — with a TraceRecorder observer riding along.
func TestPublicBackendsAgree(t *testing.T) {
	build := func() Config {
		costs, xstar := buildRegression(t)
		agents, err := HonestAgents(costs)
		if err != nil {
			t.Fatal(err)
		}
		filter, err := NewFilter("cge")
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Agents:    agents,
			F:         1,
			Filter:    filter,
			X0:        []float64{0, 0},
			Rounds:    80,
			Reference: xstar,
		}
	}
	ctx := context.Background()
	run := func(b Backend) (*Result, *TraceRecorder) {
		t.Helper()
		cfg := build()
		rec := &TraceRecorder{}
		cfg.Observer = rec
		res, err := b.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	inproc, inprocRec := run(InProcessBackend())
	for name, backend := range map[string]Backend{
		"cluster": ClusterBackend(time.Second),
		"p2p":     P2PBackend(),
	} {
		other, otherRec := run(backend)
		for i := range inproc.X {
			if inproc.X[i] != other.X[i] {
				t.Fatalf("%s backend disagrees on the estimate: %v vs %v", name, inproc.X, other.X)
			}
		}
		if len(inprocRec.Dist) != len(otherRec.Dist) {
			t.Fatalf("%s observer series lengths differ: %d vs %d", name, len(inprocRec.Dist), len(otherRec.Dist))
		}
		for i := range inprocRec.Dist {
			if inprocRec.Dist[i] != otherRec.Dist[i] {
				t.Fatalf("%s observer distance series diverges at round %d", name, i)
			}
		}
	}
}

// TestPublicRunContextCancellation: the public RunContext and SweepContext
// surface wrapped context errors.
func TestPublicRunContextCancellation(t *testing.T) {
	costs, _ := buildRegression(t)
	agents, err := HonestAgents(costs)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := NewFilter("mean")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Config{
		Agents: agents, F: 0, Filter: filter, X0: []float64{0, 0}, Rounds: 10,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext: want context.Canceled, got %v", err)
	}
	if _, err := SweepContext(ctx, SweepSpec{
		Filters: []string{"cge"}, Behaviors: []string{"zero"}, Rounds: 10,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("SweepContext: want context.Canceled, got %v", err)
	}
}

func TestPublicTheoryRoundTrip(t *testing.T) {
	rows := [][]float64{
		{1, 0}, {0.8, 0.5}, {0.5, 0.8}, {0, 1}, {-0.5, 0.8}, {-0.8, 0.5},
	}
	b := []float64{0.9108, 1.3349, 1.3376, 1.0033, 0.2142, -0.3615}
	prob, err := RegressionProblem(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureRedundancy(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Epsilon-0.0890) > 5e-4 {
		t.Errorf("epsilon = %v, want 0.0890", rep.Epsilon)
	}
	ex, err := ExhaustiveResilient(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := []int{0, 1, 2, 3, 4, 5}
	resil, err := MeasureResilience(prob, 1, honest, ex.X)
	if err != nil {
		t.Fatal(err)
	}
	if resil.MaxDistance > 2*rep.Epsilon+1e-9 {
		t.Errorf("Theorem 2 violated through public API: %v > %v", resil.MaxDistance, 2*rep.Epsilon)
	}
}

func TestPublicBoundsAndFeasibility(t *testing.T) {
	if Feasible(6, 3) {
		t.Error("f = n/2 must be infeasible")
	}
	if !Feasible(6, 1) {
		t.Error("f = 1, n = 6 must be feasible")
	}
	if _, err := CGEBoundTheorem5(6, 1, 2, 0.712); err != nil {
		t.Errorf("Theorem 5 on the paper instance: %v", err)
	}
	if _, err := CGEBoundTheorem4(6, 1, 2, 0.712); err == nil {
		t.Error("Theorem 4 should be inapplicable on the paper instance")
	}
	if _, err := CWTMBoundTheorem6(6, 1, 2, 2, 0.712, 0.1); err != nil {
		t.Errorf("Theorem 6: %v", err)
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(FilterNames()) < 8 {
		t.Errorf("filter registry too small: %v", FilterNames())
	}
	for _, name := range FilterNames() {
		if _, err := NewFilter(name); err != nil {
			t.Errorf("NewFilter(%q): %v", name, err)
		}
	}
	if len(BehaviorNames()) < 4 {
		t.Errorf("behavior registry too small: %v", BehaviorNames())
	}
	for _, name := range BehaviorNames() {
		if _, err := NewBehavior(name, 1); err != nil {
			t.Errorf("NewBehavior(%q): %v", name, err)
		}
	}
}

func TestPublicCostConstructors(t *testing.T) {
	c, err := LeastSquaresCost([][]float64{{1, 0}, {0, 1}}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Eval([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-13) > 1e-12 {
		t.Errorf("eval = %v", v)
	}
	costs, _ := buildRegression(t)
	sum, err := SumCost(costs...)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Dim() != 2 {
		t.Errorf("sum dim = %d", sum.Dim())
	}
}

func TestPublicSweepAPI(t *testing.T) {
	spec := SweepSpec{
		Filters:   []string{"cge", "cwtm"},
		Behaviors: []string{"gradient-reverse"},
		FValues:   []int{1},
		Rounds:    40,
		Workers:   4,
	}
	scns, err := SweepScenarios(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 2 {
		t.Fatalf("expected 2 scenarios, got %d", len(scns))
	}
	results, err := Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scns) {
		t.Fatalf("expected %d results, got %d", len(scns), len(results))
	}
	var buf strings.Builder
	if err := WriteSweepJSON(&buf, results, false); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status() != "ok" {
			t.Errorf("%s: %s", r.Key(), r.Err)
		}
		if math.IsNaN(r.FinalDist) || r.FinalDist < 0 {
			t.Errorf("%s: bad distance %v", r.Key(), r.FinalDist)
		}
	}
	if !strings.Contains(buf.String(), `"filter": "cge"`) {
		t.Errorf("JSON export missing scenario axes:\n%s", buf.String())
	}
}

// TestPublicAsyncAPI exercises the asynchronous round model through the
// facade: a zero-latency wait-all AsyncConfig reproduces the synchronous
// run bitwise, a straggler configuration reports round stats through
// TraceRecorder, and the sweep's Asyncs axis expands and runs.
func TestPublicAsyncAPI(t *testing.T) {
	costs, _ := buildRegression(t)
	mkConfig := func(async *AsyncConfig, obs RoundObserver) Config {
		agents, err := HonestAgents(costs)
		if err != nil {
			t.Fatal(err)
		}
		filter, err := NewFilter("cge")
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Agents:   agents,
			Filter:   filter,
			Steps:    Diminishing{C: 1.5, P: 1},
			X0:       []float64{0, 0},
			Rounds:   80,
			Async:    async,
			Observer: obs,
		}
	}
	sync, err := Run(mkConfig(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(mkConfig(&AsyncConfig{Policy: CollectWaitAll, Seed: 9}, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sync.X {
		if sync.X[i] != async.X[i] {
			t.Fatalf("zero-latency wait-all diverges from sync at coordinate %d", i)
		}
	}
	rec := &TraceRecorder{OmitEstimates: true}
	straggled, err := Run(mkConfig(&AsyncConfig{
		Latency: LatencyModel{Kind: LatencyUniform, Base: 0.2, Spread: 1, StragglerRate: 0.3, StragglerFactor: 8},
		Policy:  CollectFirstK,
		K:       4,
		Stale:   StaleReuse,
		Seed:    9,
	}, rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(straggled.X) != 2 {
		t.Fatalf("bad async result: %+v", straggled)
	}
	if len(rec.Async) != 80 {
		t.Fatalf("recorded %d async rounds, want 80", len(rec.Async))
	}
	for tt, s := range rec.Async {
		if s.Round != tt || s.Arrived != 4 {
			t.Fatalf("round %d stats = %+v, want 4 fresh arrivals", tt, s)
		}
	}

	results, err := Sweep(SweepSpec{
		Filters:   []string{"cge"},
		Behaviors: []string{"gradient-reverse"},
		FValues:   []int{1},
		Rounds:    30,
		Asyncs: []AsyncSpec{
			{},
			{Latency: LatencyFixed, Base: 1, StragglerRate: 0.25, StragglerFactor: 5,
				Policy: CollectDeadline, Deadline: 2, Stale: StaleWeighted},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("async sweep expanded %d cells, want 2", len(results))
	}
	if results[0].Async != "" || results[1].Async == "" {
		t.Fatalf("async key components wrong: %q / %q", results[0].Async, results[1].Async)
	}
	for _, r := range results {
		if r.Status() != "ok" {
			t.Errorf("%s: %s", r.Key(), r.Err)
		}
	}
	if results[1].AsyncMeanArrived <= 0 {
		t.Errorf("async cell reported mean arrived %v", results[1].AsyncMeanArrived)
	}
}

// TestPublicProblemRegistry exercises the sweep-workload registry through
// the public API: the built-in names are listed, lookups resolve, a
// learning sweep runs with its accuracy metric, and a user problem
// registered at runtime is sweepable by name.
func TestPublicProblemRegistry(t *testing.T) {
	names := ProblemNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"paper", "synthetic", "learning", "learning-b", "learning-mlp", "sensing", "robustmean"} {
		if !have[want] {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	if _, err := LookupProblem("learning"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupProblem("definitely-not-registered"); err == nil {
		t.Error("unknown problem lookup should fail")
	}

	results, err := Sweep(SweepSpec{
		Problem:   "learning",
		Filters:   []string{"cwtm"},
		Behaviors: []string{"label-flip"},
		FValues:   []int{3},
		NValues:   []int{10},
		Dims:      []int{20},
		Steps:     []StepSchedule{ConstantStep{Eta: 0.01}},
		Rounds:    3,
		Baselines: []bool{false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected faulted + baseline scenarios, got %d", len(results))
	}
	for _, r := range results {
		if r.Status() != "ok" {
			t.Fatalf("%s: %s", r.Key(), r.Err)
		}
		if r.MetricName != "test_accuracy" || r.MetricFinal <= 0 {
			t.Errorf("%s: metric not recorded (%q, %v)", r.Key(), r.MetricName, r.MetricFinal)
		}
	}

	custom := &LearningProblem{ProblemName: "public-api-learning", Preset: "b", AccuracyEvery: 5}
	if err := RegisterProblem(custom); err != nil {
		t.Fatal(err)
	}
	if err := RegisterProblem(custom); err == nil {
		t.Error("duplicate registration should fail")
	}
	again, err := Sweep(SweepSpec{
		Problem: "public-api-learning",
		Filters: []string{"cge-avg"},
		FValues: []int{0},
		NValues: []int{10},
		Dims:    []int{20},
		Steps:   []StepSchedule{ConstantStep{Eta: 0.01}},
		Rounds:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].Status() != "ok" || again[0].Problem != "public-api-learning" {
		t.Fatalf("registered problem did not sweep: %+v", again)
	}
}

// TestPublicFilterRegistry exercises the redesigned filter-registry facade:
// parameterized spellings resolve, the REDGRAF filters and their aliases are
// live, family prefixes are listed, extension registers work, and unknown
// names fail with the full vocabulary in the message.
func TestPublicFilterRegistry(t *testing.T) {
	fl, err := NewFilter("multikrum-7")
	if err != nil {
		t.Fatal(err)
	}
	if mk, ok := fl.(MultiKrum); !ok || mk.M != 7 {
		t.Fatalf("NewFilter(multikrum-7) = %#v", fl)
	}
	for _, name := range []string{"sdmmfd", "r-sdmmfd", "sdfd", "rvo"} {
		if _, err := NewFilter(name); err != nil {
			t.Errorf("NewFilter(%q): %v", name, err)
		}
	}
	var _ Filter = &SDMMFD{}
	var _ Filter = &RSDMMFD{}
	var _ Filter = &SDFD{}
	var _ Filter = RVO{}
	var _ SeedConfigurable = &SDMMFD{}

	prefixes := FilterFamilyPrefixes()
	haveFamily := map[string]bool{}
	for _, p := range prefixes {
		haveFamily[p] = true
	}
	if !haveFamily["multikrum"] || !haveFamily["gmom"] {
		t.Errorf("family prefixes missing built-ins: %v", prefixes)
	}

	if err := RegisterFilter("public-api-mean", func() Filter { return Mean{} }); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFilter("public-api-mean"); err != nil {
		t.Errorf("registered filter not constructible: %v", err)
	}
	if err := RegisterFilterParam("public-api-mk", func(m int) (Filter, error) {
		return MultiKrum{M: m}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if fl, err := NewFilter("public-api-mk-4"); err != nil {
		t.Errorf("registered family not constructible: %v", err)
	} else if mk, ok := fl.(MultiKrum); !ok || mk.M != 4 {
		t.Errorf("public-api-mk-4 = %#v", fl)
	}

	_, err = NewFilter("no-such-filter")
	if err == nil {
		t.Fatal("unknown filter accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, "registered:") || !strings.Contains(msg, "parameterized:") {
		t.Errorf("unknown-filter error does not list the registry: %s", msg)
	}
}

// TestPublicTraceMetrics exercises the trace-metric facade end to end: the
// built-in convergence-geometry metrics are listed and resolvable, a sweep
// run through the facade reports them, and a custom registered metric shows
// up in the same export.
func TestPublicTraceMetrics(t *testing.T) {
	names := TraceMetricNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{TraceMetricConvergenceRate, TraceMetricConvergenceRadius, TraceMetricConsensusDiameter} {
		if !have[want] {
			t.Fatalf("trace-metric registry missing %q (have %v)", want, names)
		}
		if _, ok := LookupTraceMetric(want); !ok {
			t.Fatalf("LookupTraceMetric(%q) failed", want)
		}
	}
	if _, ok := LookupTraceMetric("no-such-metric"); ok {
		t.Error("unknown metric lookup should fail")
	}

	if err := RegisterTraceMetric(TraceMetric{
		Name: "public-api-final-dist",
		Eval: func(in TraceMetricInput) (float64, []float64, error) {
			return in.Dist[len(in.Dist)-1], nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	results, err := Sweep(SweepSpec{
		Filters:   []string{"cwtm", "sdmmfd"},
		Behaviors: []string{"gradient-reverse"},
		FValues:   []int{1},
		Rounds:    40,
		TraceMetrics: []string{
			TraceMetricConvergenceRate, TraceMetricConvergenceRadius,
			TraceMetricConsensusDiameter, "public-api-final-dist",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status() != "ok" {
			t.Fatalf("%s: %s", r.Key(), r.Err)
		}
		if len(r.TraceMetrics) != 4 {
			t.Fatalf("%s: got metrics %v, want 4 entries", r.Key(), r.TraceMetrics)
		}
		if got := r.TraceMetrics["public-api-final-dist"]; math.Float64bits(got) != math.Float64bits(r.FinalDist) {
			t.Errorf("%s: custom metric %v != FinalDist %v", r.Key(), got, r.FinalDist)
		}
		rate := r.TraceMetrics[TraceMetricConvergenceRate]
		if math.IsNaN(rate) || rate <= 0 {
			t.Errorf("%s: implausible convergence rate %v", r.Key(), rate)
		}
	}
}
