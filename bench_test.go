// Benchmark harness: one benchmark per paper table/figure plus ablations.
//
// Each benchmark regenerates its experiment and reports the headline
// numbers as custom metrics (b.ReportMetric), so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. The abft-bench command
// prints the same data as human-readable tables and CSV series.
package byzopt_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"byzopt"
	"byzopt/internal/aggregate"
	"byzopt/internal/byzantine"
	"byzopt/internal/core"
	"byzopt/internal/dgd"
	"byzopt/internal/experiments"
	"byzopt/internal/linreg"
	"byzopt/internal/matrix"
	"byzopt/internal/p2p"
	"byzopt/internal/robustmean"
)

// --- one benchmark per table/figure ---

// BenchmarkTable1 regenerates Table 1 (distributed linear regression,
// n=6, f=1; CGE and CWTM against gradient-reverse and random faults) and
// reports each dist(x_H, x_out) cell as a metric.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, inst, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Dist, fmt.Sprintf("dist_%s_%s", r.Filter, shortFault(r.Fault)))
		}
		b.ReportMetric(inst.Epsilon, "epsilon")
	}
}

// BenchmarkFigure2 regenerates the full Figure-2 series (t = 0..1500, via
// the sweep engine) and reports the final distances per series and fault.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, _, err := experiments.RegressionFigure(1500, 0)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, figs)
	}
}

// BenchmarkFigure3 regenerates the zoomed Figure-3 prefix (t = 0..80).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, _, err := experiments.RegressionFigure(80, 0)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, figs)
	}
}

// BenchmarkFigure4 regenerates Figure 4 (D-SGD on the MNIST stand-in,
// n=10, f=3, 1000 iterations) and reports final accuracies.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4(experiments.LearnConfig{Rounds: 1000, AccuracyEvery: 25})
		if err != nil {
			b.Fatal(err)
		}
		reportLearn(b, series)
	}
}

// BenchmarkFigure5 regenerates Figure 5 (the harder Fashion-MNIST
// stand-in).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(experiments.LearnConfig{Rounds: 1000, AccuracyEvery: 25})
		if err != nil {
			b.Fatal(err)
		}
		reportLearn(b, series)
	}
}

// BenchmarkAppendixJ recomputes the instance constants (epsilon, mu, gamma,
// theorem bounds) from raw data.
func BenchmarkAppendixJ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AppendixJ()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Epsilon, "epsilon")
		b.ReportMetric(rep.Theorem5.D, "thm5_D")
		b.ReportMetric(rep.ExhaustiveResilience, "thm2_worst_dist")
	}
}

// BenchmarkExhaustive times the Theorem-2 exhaustive algorithm on the paper
// instance (36 subset minimizations).
func BenchmarkExhaustive(b *testing.B) {
	inst, err := linreg.Paper()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExhaustiveResilient(inst.Problem, linreg.F); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRedundancyMeasurement times the Appendix-J.2 epsilon
// measurement as n grows (the subset enumeration is the cost driver).
func BenchmarkRedundancyMeasurement(b *testing.B) {
	for _, n := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(n)))
			rows := make([][]float64, n)
			resp := make([]float64, n)
			for i := range rows {
				rows[i] = []float64{r.NormFloat64(), r.NormFloat64()}
				resp[i] = rows[i][0] + rows[i][1] + 0.01*r.NormFloat64()
			}
			prob, err := byzopt.RegressionProblem(rows, resp)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := byzopt.MeasureRedundancy(prob, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- filter micro-benchmarks ---

// BenchmarkFilters measures raw aggregation throughput at learning-scale
// inputs (n = 50 gradients of dimension 1000, f = 5).
func BenchmarkFilters(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const n, d, f = 50, 1000, 5
	grads := make([][]float64, n)
	for i := range grads {
		grads[i] = make([]float64, d)
		for j := range grads[i] {
			grads[i][j] = r.NormFloat64()
		}
	}
	for _, name := range byzopt.FilterNames() {
		filter, err := byzopt.NewFilter(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			if _, err := filter.Aggregate(grads, f); errors.Is(err, aggregate.ErrTooManyFaults) {
				b.Skipf("%s cannot tolerate f=%d at n=%d: %v", name, f, n, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := filter.Aggregate(grads, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- parallelism baselines (sequential vs concurrent hot paths) ---

// benchWorkerCounts is the sequential-vs-parallel workers axis of the
// seq-vs-par benchmarks. On a single-core machine GOMAXPROCS is 1 and the
// two points coincide; the duplicate is dropped so the benchmark namespace
// never emits the same configuration twice (the test runner would rename
// the repeat "…#01", polluting name-keyed trajectories).
func benchWorkerCounts() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// benchGrid is the (n, d) grid shared by the parallelism baselines, so
// future PRs can diff like against like.
var benchGrid = []struct{ n, d int }{
	{10, 10}, {10, 1000}, {50, 10}, {50, 1000}, {100, 10}, {100, 1000},
}

// BenchmarkCollectGradients compares sequential and concurrent gradient
// collection (dgd.Config.Workers) over one engine round; all agents are
// honest so the measurement isolates the collection fan-out.
func BenchmarkCollectGradients(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	for _, g := range benchGrid {
		costs := make([]byzopt.Cost, g.n)
		for i := range costs {
			row := make([]float64, g.d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			c, err := byzopt.SingleObservationCost(row, r.NormFloat64())
			if err != nil {
				b.Fatal(err)
			}
			costs[i] = c
		}
		agents, err := byzopt.HonestAgents(costs)
		if err != nil {
			b.Fatal(err)
		}
		x0 := make([]float64, g.d)
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/d=%d/workers=%d", g.n, g.d, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := byzopt.Run(byzopt.Config{
						Agents:  agents,
						F:       0,
						Filter:  aggregate.Mean{},
						X0:      x0,
						Rounds:  1,
						Workers: workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKrumScores compares the sequential and concurrent O(n²·d)
// distance matrix behind the Krum family (aggregate.Krum.Workers).
func BenchmarkKrumScores(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	const f = 2
	for _, g := range benchGrid {
		grads := make([][]float64, g.n)
		for i := range grads {
			grads[i] = make([]float64, g.d)
			for j := range grads[i] {
				grads[i][j] = r.NormFloat64()
			}
		}
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/d=%d/workers=%d", g.n, g.d, workers), func(b *testing.B) {
				filter := aggregate.Krum{Workers: workers}
				for i := 0; i < b.N; i++ {
					if _, err := filter.Aggregate(grads, f); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkForEachSubset compares the sequential subset enumerator with the
// chunked parallel one (core.ForEachSubsetParallel) on a CPU-bound visit —
// the shape of the redundancy measurement's inner loop — at one worker and
// at GOMAXPROCS. Per-worker accumulators merged in worker order keep the
// reported checksum bitwise-identical across the column.
func BenchmarkForEachSubset(b *testing.B) {
	const n, k = 22, 11
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 + float64(i)/n
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=%d/k=%d/workers=%d", n, k, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sums := make([]float64, workers)
				err := core.ForEachSubsetParallel(n, k, workers, func(w int, idx []int) error {
					s := 1.0
					for _, j := range idx {
						s = s*weights[j] + float64(j)
					}
					sums[w] += s
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				var total float64
				for _, s := range sums {
					total += s
				}
				b.ReportMetric(total, "checksum")
			}
		})
	}
}

// BenchmarkP2PSweep drives a small Byzantine grid — the broadcast-only
// equivocation axis included — over the peer-to-peer backend at one worker
// and at GOMAXPROCS, measuring the sweep engine against the EIG substrate.
func BenchmarkP2PSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := byzopt.Sweep(byzopt.SweepSpec{
					Problem:   "paper",
					Filters:   []string{"cge", "cwtm", "mean"},
					Behaviors: []string{"gradient-reverse", "equivocate"},
					FValues:   []int{1},
					Rounds:    120,
					Workers:   workers,
					Backend:   byzopt.P2PBackend(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 6 {
					b.Fatalf("expected 6 scenarios, got %d", len(results))
				}
			}
		})
	}
}

// BenchmarkSweepEngine runs the acceptance sweep — 8 filters × 4 behaviors
// × 2 f-values = 64 scenarios on the paper's regression benchmark — at one
// worker and at GOMAXPROCS, so the speedup is a reported baseline.
func BenchmarkSweepEngine(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := byzopt.Sweep(byzopt.SweepSpec{
					Problem:   "paper",
					Filters:   []string{"mean", "cge", "cge-avg", "cwtm", "cwmedian", "krum", "geomedian", "centeredclip"},
					Behaviors: []string{"gradient-reverse", "random", "ipm", "alie"},
					FValues:   []int{1, 2},
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 64 {
					b.Fatalf("expected 64 scenarios, got %d", len(results))
				}
			}
		})
	}
}

// --- ablations (design choices called out in DESIGN.md section 5) ---

// BenchmarkAblationFilters compares every registered filter on the
// regression instance under the gradient-reverse fault, reporting the final
// distance to x_H. CGE and CWTM (the paper's filters) should land below
// epsilon; the point of the ablation is where the baselines land.
func BenchmarkAblationFilters(b *testing.B) {
	inst, err := linreg.Paper()
	if err != nil {
		b.Fatal(err)
	}
	costs, err := inst.Costs()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range byzopt.FilterNames() {
		filter, err := byzopt.NewFilter(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			// Filters whose tolerance condition fails at the paper's
			// (n, f) = (6, 1) — Bulyan needs n >= 4f+3 = 7 — sit out.
			probe := make([][]float64, linreg.N)
			for i := range probe {
				probe[i] = []float64{1, 1}
			}
			if _, err := filter.Aggregate(probe, linreg.F); errors.Is(err, aggregate.ErrTooManyFaults) {
				b.Skipf("%s infeasible at n=%d f=%d: %v", name, linreg.N, linreg.F, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agents, err := dgd.HonestAgents(costs)
				if err != nil {
					b.Fatal(err)
				}
				fa, err := dgd.NewFaulty(agents[0], byzantine.GradientReverse{})
				if err != nil {
					b.Fatal(err)
				}
				agents[0] = fa
				res, err := dgd.Run(dgd.Config{
					Agents:    agents,
					F:         linreg.F,
					Filter:    filter,
					Box:       inst.Box,
					X0:        inst.X0,
					Rounds:    500,
					Reference: inst.XH,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Trace.Dist[len(res.Trace.Dist)-1], "final_dist")
			}
		})
	}
}

// BenchmarkAblationStepSize compares the paper's diminishing schedule with
// constant steps on the Table-1 workload (CGE, gradient-reverse).
func BenchmarkAblationStepSize(b *testing.B) {
	inst, err := linreg.Paper()
	if err != nil {
		b.Fatal(err)
	}
	costs, err := inst.Costs()
	if err != nil {
		b.Fatal(err)
	}
	schedules := []dgd.StepSchedule{
		dgd.Diminishing{C: 1.5, P: 1},
		dgd.Diminishing{C: 1.5, P: 0.75},
		dgd.Constant{Eta: 0.05},
		dgd.Constant{Eta: 0.005},
	}
	for _, sched := range schedules {
		b.Run(sched.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agents, err := dgd.HonestAgents(costs)
				if err != nil {
					b.Fatal(err)
				}
				fa, err := dgd.NewFaulty(agents[0], byzantine.GradientReverse{})
				if err != nil {
					b.Fatal(err)
				}
				agents[0] = fa
				res, err := dgd.Run(dgd.Config{
					Agents:    agents,
					F:         linreg.F,
					Filter:    aggregate.CGE{},
					Steps:     sched,
					Box:       inst.Box,
					X0:        inst.X0,
					Rounds:    500,
					Reference: inst.XH,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Trace.Dist[len(res.Trace.Dist)-1], "final_dist")
			}
		})
	}
}

// BenchmarkAblationFaultFraction sweeps the number of actual Byzantine
// agents at n = 12 under CGE, exposing the breakdown the alpha > 0
// condition of Theorems 4/5 predicts as f/n grows.
func BenchmarkAblationFaultFraction(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	const n = 12
	rows := make([][]float64, n)
	resp := make([]float64, n)
	for i := range rows {
		angle := float64(i) / n
		rows[i] = []float64{1 - angle, angle}
		resp[i] = rows[i][0] + rows[i][1] + 0.01*r.NormFloat64()
	}
	for _, f := range []int{0, 1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				costs := make([]byzopt.Cost, n)
				for j := range rows {
					c, err := byzopt.SingleObservationCost(rows[j], resp[j])
					if err != nil {
						b.Fatal(err)
					}
					costs[j] = c
				}
				agents, err := byzopt.HonestAgents(costs)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < f; j++ {
					agents[j], err = byzopt.ByzantineAgent(agents[j], byzantine.GradientReverse{})
					if err != nil {
						b.Fatal(err)
					}
				}
				box, err := byzopt.NewCube(2, 1000)
				if err != nil {
					b.Fatal(err)
				}
				res, err := byzopt.Run(byzopt.Config{
					Agents:    agents,
					F:         f,
					Filter:    aggregate.CGE{},
					Box:       box,
					X0:        []float64{0, 0},
					Rounds:    400,
					Reference: []float64{1, 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Trace.Dist[len(res.Trace.Dist)-1], "final_dist")
			}
		})
	}
}

// BenchmarkAblationBounds compares the Theorem-4 and Theorem-5 resilience
// constants D across system sizes at the paper's mu/gamma ratio.
func BenchmarkAblationBounds(b *testing.B) {
	const mu, gamma = 2.0, 0.712
	for _, n := range []int{8, 10, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if b4, err := byzopt.CGEBoundTheorem4(n, 1, mu, gamma); err == nil {
					b.ReportMetric(b4.D, "thm4_D")
				}
				b5, err := byzopt.CGEBoundTheorem5(n, 1, mu, gamma)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(b5.D, "thm5_D")
			}
		})
	}
}

// BenchmarkEIGBroadcast measures the Byzantine-broadcast cost as f grows
// (the tree is exponential in f, the price of the p2p architecture).
func BenchmarkEIGBroadcast(b *testing.B) {
	for _, cfg := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		b.Run(fmt.Sprintf("n=%d_f=%d", cfg.n, cfg.f), func(b *testing.B) {
			value := p2p.EncodeVector([]float64{1, 2})
			byz := map[int]p2p.Distorter{1: p2p.SplitLiar{}}
			nodes, err := p2p.MessageCost(cfg.n, cfg.f)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(nodes), "tree_nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p2p.Broadcast(cfg.n, cfg.f, 0, value, byz); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- zero-allocation round loop (PR 5) ---

// benchLegacyAgent strips the IntoAgent face off an agent, forcing the
// engine's allocating gradient collection.
type benchLegacyAgent struct{ inner dgd.Agent }

func (l benchLegacyAgent) Gradient(round int, x []float64) ([]float64, error) {
	return l.inner.Gradient(round, x)
}

// benchLegacyFilter strips the IntoFilter face off a filter, forcing the
// engine's allocating aggregation.
type benchLegacyFilter struct{ inner aggregate.Filter }

func (l benchLegacyFilter) Name() string { return l.inner.Name() }

func (l benchLegacyFilter) Aggregate(grads [][]float64, f int) ([]float64, error) {
	return l.inner.Aggregate(grads, f)
}

// BenchmarkRoundLoop measures the steady-state engine round under CWTM on
// the (n, d) grid, comparing the zero-allocation scratch path (Into-capable
// agents + IntoFilter) against the legacy allocating path with the Into
// faces stripped. Run with -benchmem: the into column's B/op is the win the
// scratch-space API buys (per-run setup amortized over the rounds of each
// op; both paths produce bitwise-identical trajectories, see the parity
// tests).
func BenchmarkRoundLoop(b *testing.B) {
	const rounds = 10
	r := rand.New(rand.NewSource(8))
	for _, g := range []struct{ n, d int }{{10, 10}, {10, 1000}, {100, 10}, {100, 1000}} {
		costs := make([]byzopt.Cost, g.n)
		for i := range costs {
			row := make([]float64, g.d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			c, err := byzopt.SingleObservationCost(row, r.NormFloat64())
			if err != nil {
				b.Fatal(err)
			}
			costs[i] = c
		}
		intoAgents, err := byzopt.HonestAgents(costs)
		if err != nil {
			b.Fatal(err)
		}
		allocAgents := make([]byzopt.Agent, len(intoAgents))
		for i, a := range intoAgents {
			allocAgents[i] = benchLegacyAgent{inner: a}
		}
		x0 := make([]float64, g.d)
		for _, path := range []struct {
			name   string
			agents []byzopt.Agent
			filter aggregate.Filter
		}{
			{"into", intoAgents, aggregate.CWTM{}},
			{"alloc", allocAgents, benchLegacyFilter{inner: aggregate.CWTM{}}},
		} {
			b.Run(fmt.Sprintf("n=%d/d=%d/path=%s", g.n, g.d, path.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := byzopt.Run(byzopt.Config{
						Agents: path.agents,
						F:      2,
						Filter: path.filter,
						X0:     x0,
						Rounds: rounds,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDGDRound measures one full engine round at learning scale
// (n = 20 agents, d = 2000).
func BenchmarkDGDRound(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	const n, d = 20, 2000
	costs := make([]byzopt.Cost, n)
	for i := range costs {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		c, err := byzopt.SingleObservationCost(row, r.NormFloat64())
		if err != nil {
			b.Fatal(err)
		}
		costs[i] = c
	}
	agents, err := byzopt.HonestAgents(costs)
	if err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := byzopt.Run(byzopt.Config{
			Agents: agents,
			F:      2,
			Filter: aggregate.CWTM{},
			X0:     x0,
			Rounds: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncRound measures the virtual-time overlay's overhead on one
// engine round at learning scale (n = 20, d = 2000): the synchronous
// baseline against wait-all, first-k partial aggregation, and a
// virtual-time deadline, all under a straggler-heavy uniform latency model.
func BenchmarkAsyncRound(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	const n, d = 20, 2000
	costs := make([]byzopt.Cost, n)
	for i := range costs {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		c, err := byzopt.SingleObservationCost(row, r.NormFloat64())
		if err != nil {
			b.Fatal(err)
		}
		costs[i] = c
	}
	agents, err := byzopt.HonestAgents(costs)
	if err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, d)
	latency := byzopt.LatencyModel{Kind: byzopt.LatencyUniform, Base: 0.2, Spread: 1, StragglerRate: 0.25, StragglerFactor: 8}
	for _, c := range []struct {
		name  string
		async *byzopt.AsyncConfig
	}{
		{"sync", nil},
		{"wait-all", &byzopt.AsyncConfig{Latency: latency, Policy: byzopt.CollectWaitAll, Stale: byzopt.StaleReuse, Seed: 7}},
		{"first-k", &byzopt.AsyncConfig{Latency: latency, Policy: byzopt.CollectFirstK, K: 15, Stale: byzopt.StaleReuse, Seed: 7}},
		{"deadline", &byzopt.AsyncConfig{Latency: latency, Policy: byzopt.CollectDeadline, Deadline: 0.9, Stale: byzopt.StaleWeighted, Seed: 7}},
	} {
		b.Run("policy="+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := byzopt.Run(byzopt.Config{
					Agents: agents,
					F:      2,
					Filter: aggregate.CWTM{},
					X0:     x0,
					Rounds: 1,
					Async:  c.async,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func reportFigure(b *testing.B, figs []experiments.FigureData) {
	b.Helper()
	for _, fd := range figs {
		for _, s := range fd.Series {
			if len(s.Dist) == 0 {
				continue
			}
			b.ReportMetric(s.Dist[len(s.Dist)-1], fmt.Sprintf("dist_%s_%s", s.Name, shortFault(fd.Fault)))
		}
	}
}

func reportLearn(b *testing.B, series []experiments.LearnSeries) {
	b.Helper()
	for _, s := range series {
		if len(s.Accuracy) == 0 {
			continue
		}
		b.ReportMetric(s.Accuracy[len(s.Accuracy)-1], "acc_"+s.Name)
	}
}

func shortFault(name string) string {
	if name == "gradient-reverse" {
		return "gr"
	}
	return "rand"
}

// BenchmarkSVM regenerates the Section-5 distributed-SVM experiment and
// reports final accuracies.
func BenchmarkSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.SVM(300)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Accuracy, "acc_"+r.Name)
		}
	}
}

// BenchmarkRobustMean exercises the Section-2.3 application: robust mean
// estimation of 12 points with 2 planted outliers, via the exhaustive
// Theorem-2 route and the filtered-DGD route.
func BenchmarkRobustMean(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	points := make([][]float64, 12)
	for i := range points {
		points[i] = []float64{r.NormFloat64() * 0.1, 3 + r.NormFloat64()*0.1}
	}
	points[10] = []float64{1e5, -1e5}
	points[11] = []float64{-1e5, 1e5}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robustmean.Exhaustive(points, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dgd-cwtm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robustmean.ViaDGD(points, 2, aggregate.CWTM{}, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSolvers compares the two least-squares paths (Householder
// QR vs normal equations + Cholesky) that back every subset minimization.
func BenchmarkAblationSolvers(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	const rows, cols = 64, 8
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	a, err := matrix.New(rows, cols, data)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, rows)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.Run("householder-qr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.LeastSquares(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("normal-equations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.NormalEquations(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHeterogeneity sweeps data skew (non-i.i.d. sharding) in
// the learning workload, quantifying the Appendix-K remark that accuracy
// depends on the correlation among non-faulty agents' data.
func BenchmarkAblationHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Heterogeneity(300, []float64{0, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Accuracy, fmt.Sprintf("acc_skew_%g", r.Skew))
		}
	}
}
