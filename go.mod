module byzopt

go 1.24
