#!/usr/bin/env bash
# Distributed sweep crash drill: launch a coordinator and two workers,
# SIGKILL one worker mid-grid, and require the fleet's final export to be
# byte-identical to a single-process run of the same flags.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  local pids
  pids=$(jobs -p)
  [ -n "$pids" ] && kill $pids 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

BIN="$workdir/abft-sweep"
go build -o "$BIN" ./cmd/abft-sweep

# A grid slow enough (12 cells, n=30, 3000 rounds, O(n^2 d) bulyan) that the
# victim worker is realistically mid-lease when the SIGKILL lands.
GRID=(-filters cge,cwtm,bulyan -behaviors gradient-reverse,random
      -f 1,2 -n 30 -rounds 3000 -quiet)

echo "==> single-process golden"
"$BIN" "${GRID[@]}" -json "$workdir/golden.json"

echo "==> coordinator + two workers, one SIGKILLed mid-grid"
"$BIN" "${GRID[@]}" -coordinator 127.0.0.1:0 -addr-file "$workdir/addr" \
    -lease-cells 1 -lease-ttl 5s -checkpoint "$workdir/grid.ckpt" \
    -json "$workdir/fleet.json" &
coord=$!

for _ in $(seq 1 100); do
  [ -s "$workdir/addr" ] && break
  sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "coordinator never published its address"; exit 1; }
addr=$(head -n1 "$workdir/addr")

"$BIN" -worker "$addr" -name victim &
victim=$!
sleep 1
if kill -9 "$victim" 2>/dev/null; then
  echo "==> SIGKILLed victim worker (pid $victim)"
else
  echo "==> victim finished before the SIGKILL; parity check still holds"
fi
wait "$victim" 2>/dev/null || true

"$BIN" -worker "$addr" -name survivor
wait "$coord"

cmp "$workdir/golden.json" "$workdir/fleet.json"
echo "OK: fleet export is byte-identical to the single-process run"
